#include "cudasim/exec.hpp"

#include <algorithm>
#include <cassert>

namespace ohd::cudasim {

void ThreadCtx::shared_access(std::uint32_t count) {
  block_.stats_.shared_accesses += count;
}

void ThreadCtx::global_access(std::uint64_t addr, std::uint32_t bytes,
                              bool is_write) {
  // Slot = how many accesses this lane has already made in the current phase;
  // the k-th access of every lane in the warp coalesces together.
  const std::uint32_t slot = slot_counter_++;
  if (slot >= block_.slots_.size()) {
    block_.slots_.resize(slot + 1);
  }
  block_.slots_used_ = std::max(block_.slots_used_, slot + 1);
  const std::uint64_t first = addr / 32;
  const std::uint64_t last = (addr + std::max(bytes, 1u) - 1) / 32;
  for (std::uint64_t seg = first; seg <= last; ++seg) {
    const bool warp_new = block_.warp_sectors_.insert(seg).second;
    if (is_write) {
      // Write-through (V100 global stores bypass L1): every distinct sector
      // per slot is a memory-system transaction; only intra-slot coalescing
      // applies.
      if (!block_.slots_[slot].contains(seg)) {
        ++block_.stats_.global_transactions;
      }
    } else if (warp_new) {
      // Reads re-touching a sector this warp already holds are L1 hits.
      ++block_.stats_.global_transactions;
    }
    block_.slots_[slot].insert(seg);
  }
  block_.stats_.global_bytes_useful += bytes;
}

BlockCtx::BlockCtx(const DeviceSpec& spec, LaunchConfig cfg,
                   std::uint32_t block_idx)
    : spec_(spec), cfg_(cfg), block_idx_(block_idx), shared_(cfg.shmem_bytes) {
  stats_.grid_dim = cfg.grid_dim;
  stats_.block_dim = cfg.block_dim;
  stats_.shmem_per_block = cfg.shmem_bytes;
}

void BlockCtx::flush_warp(std::uint64_t max_lane_cycles) {
  // Memory issue cost: every distinct transaction occupies the LSU.
  // Bandwidth-wise (stats_.global_transactions) a sector already touched by
  // this warp in the current phase is an L1 hit and is not recounted — this
  // models the warp-phase working-set reuse of the real kernels (decode
  // tables, a subsequence's units).
  std::uint64_t mem_cycles = 0;
  for (std::uint32_t s = 0; s < slots_used_; ++s) {
    const std::uint32_t txns = slots_[s].distinct();
    mem_cycles += static_cast<std::uint64_t>(txns) * spec_.mem_issue_cycles;
    slots_[s].clear();
  }
  slots_used_ = 0;
  warp_sectors_.clear();
  phase_warp_max_cycles_ =
      std::max(phase_warp_max_cycles_, max_lane_cycles + mem_cycles);
}

void BlockCtx::for_each_thread(const std::function<void(ThreadCtx&)>& f) {
  const std::uint32_t warp_size = spec_.warp_size;
  phase_warp_max_cycles_ = 0;
  std::uint64_t warp_max_lane_cycles = 0;
  for (std::uint32_t tid = 0; tid < cfg_.block_dim; ++tid) {
    if (tid != 0 && tid % warp_size == 0) {
      flush_warp(warp_max_lane_cycles);
      warp_max_lane_cycles = 0;
    }
    ThreadCtx t(*this);
    t.tid_ = tid;
    t.warp_size_ = warp_size;
    f(t);
    warp_max_lane_cycles = std::max(warp_max_lane_cycles, t.cycles_);
  }
  flush_warp(warp_max_lane_cycles);
  // Barrier: the block's phase costs as much as its slowest warp, and every
  // warp occupies its scheduler slot for that long.
  block_cycles_ += phase_warp_max_cycles_;
  stats_.barriers += 1;

  const std::uint32_t warps_per_block =
      (cfg_.block_dim + warp_size - 1) / warp_size;
  stats_.critical_block_cycles_max = block_cycles_;
  stats_.block_cycles_sum = block_cycles_;
  stats_.scheduled_warp_cycles = block_cycles_ * warps_per_block;
}

void BlockCtx::charge_all(std::uint64_t cycles) {
  block_cycles_ += cycles;
  const std::uint32_t warps_per_block =
      (cfg_.block_dim + spec_.warp_size - 1) / spec_.warp_size;
  stats_.critical_block_cycles_max = block_cycles_;
  stats_.block_cycles_sum = block_cycles_;
  stats_.scheduled_warp_cycles = block_cycles_ * warps_per_block;
}

SimContext::SimContext(DeviceSpec spec) : model_(std::move(spec)) {}

std::uint64_t SimContext::reserve_address(std::uint64_t bytes) {
  // 512-byte alignment so distinct buffers never share a 32B segment.
  const std::uint64_t base = next_address_;
  next_address_ += (bytes + 511) / 512 * 512 + 512;
  return base;
}

KernelResult SimContext::run(LaunchConfig cfg, const BlockKernel& body) {
  KernelStats total;
  total.grid_dim = cfg.grid_dim;
  total.block_dim = cfg.block_dim;
  total.shmem_per_block = cfg.shmem_bytes;

  for (std::uint32_t b = 0; b < cfg.grid_dim; ++b) {
    BlockCtx block(model_.spec(), cfg, b);
    body(block);
    total.merge(block.stats());
  }
  KernelResult result;
  result.stats = total;
  result.timing = model_.time_kernel(total);
  return result;
}

KernelResult SimContext::launch(const std::string& name, LaunchConfig cfg,
                                const BlockKernel& body) {
  KernelResult result = run(cfg, body);
  timeline_.add(name, result.timing.seconds);
  return result;
}

KernelResult SimContext::launch_untimed(const std::string& /*name*/,
                                        LaunchConfig cfg,
                                        const BlockKernel& body) {
  return run(cfg, body);
}

double SimContext::host_to_device(std::uint64_t bytes,
                                  const std::string& name) {
  const double seconds = model_.host_to_device_seconds(bytes);
  timeline_.add(name, seconds);
  return seconds;
}

}  // namespace ohd::cudasim
