#include "cudasim/timeline.hpp"

namespace ohd::cudasim {

void Timeline::add(const std::string& name, double seconds) {
  entries_.emplace_back(name, seconds);
  total_ += seconds;
}

void Timeline::clear() {
  entries_.clear();
  total_ = 0.0;
}

double Timeline::total_with_prefix(const std::string& prefix) const {
  double sum = 0.0;
  for (const auto& [name, seconds] : entries_) {
    if (name.rfind(prefix, 0) == 0) sum += seconds;
  }
  return sum;
}

}  // namespace ohd::cudasim
