#include "service/compression_service.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "cudasim/exec.hpp"
#include "obs/trace.hpp"

namespace ohd::service {

namespace {

/// Registry handles of the "service.*" catalogue, resolved once; recording
/// through them is lock-free. Heap-allocated so the handles (which point
/// into the process registry, itself never destroyed before exit) outlive
/// every service instance.
struct ServiceMetrics {
  obs::Counter& accepted;
  obs::Counter& rejected_busy;
  obs::Counter& rejected_client_cap;
  obs::Counter& rejected_quota;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& cancelled;        // service.cancel.total
  obs::Counter& cancel_queued;    // service.cancel.queued
  obs::Counter& cancel_running;   // service.cancel.running
  obs::Counter& expired;          // service.expired.total
  obs::Counter& expired_queued;   // service.expired.queued
  obs::Counter& shed;             // service.shed.count
  obs::Counter& shed_rejected;    // service.shed.rejected
  obs::Counter& readers_evicted;
  obs::Gauge& queue_depth;
  obs::Gauge& inflight;
  obs::Gauge& inflight_bytes;
  obs::Gauge& active_clients;
  obs::Gauge& open_readers;
  obs::Gauge* queue_age[kPriorityClasses];
  obs::LatencyHistogram* queue_wait[kRequestClasses];
  obs::LatencyHistogram* latency[kRequestClasses];
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics* m = [] {
    auto& r = obs::registry();
    auto* sm = new ServiceMetrics{r.counter("service.accepted"),
                                  r.counter("service.rejected_busy"),
                                  r.counter("service.rejected_client_cap"),
                                  r.counter("service.rejected_quota"),
                                  r.counter("service.completed"),
                                  r.counter("service.failed"),
                                  r.counter("service.cancel.total"),
                                  r.counter("service.cancel.queued"),
                                  r.counter("service.cancel.running"),
                                  r.counter("service.expired.total"),
                                  r.counter("service.expired.queued"),
                                  r.counter("service.shed.count"),
                                  r.counter("service.shed.rejected"),
                                  r.counter("service.readers_evicted"),
                                  r.gauge("service.queue_depth"),
                                  r.gauge("service.inflight"),
                                  r.gauge("service.inflight_bytes"),
                                  r.gauge("service.active_clients"),
                                  r.gauge("service.open_readers"),
                                  {},
                                  {},
                                  {}};
    for (std::size_t i = 0; i < kPriorityClasses; ++i) {
      sm->queue_age[i] = &r.gauge(
          std::string("service.queue_age.") +
          priority_name(static_cast<Priority>(i)) + "_ns");
    }
    for (std::size_t i = 0; i < kRequestClasses; ++i) {
      const std::string base =
          std::string("service.") +
          request_class_name(static_cast<RequestClass>(i));
      sm->queue_wait[i] = &r.histogram(base + ".queue_wait_ns");
      sm->latency[i] = &r.histogram(base + ".latency_ns");
    }
    return sm;
  }();
  return *m;
}

/// Span names of the per-request ScopedOps ("service.compress", ...).
const std::string& span_name(RequestClass cls) {
  static const std::string names[kRequestClasses] = {
      "service.compress", "service.decompress", "service.chunk",
      "service.range"};
  return names[static_cast<std::size_t>(cls)];
}

ServiceConfig normalize(ServiceConfig config) {
  config.dispatchers = std::max<std::size_t>(1, config.dispatchers);
  config.max_queue_depth = std::max<std::size_t>(1, config.max_queue_depth);
  config.max_inflight_per_client =
      std::max<std::size_t>(1, config.max_inflight_per_client);
  config.max_open_readers_per_client =
      std::max<std::size_t>(1, config.max_open_readers_per_client);
  config.max_inflight_bytes_per_client =
      std::max<std::size_t>(1, config.max_inflight_bytes_per_client);
  if (config.sweep_interval.count() <= 0) {
    config.sweep_interval = std::chrono::microseconds(1000);
  }
  return config;
}

/// "~X.X ms" fragments of the pinned rejection messages (one decimal, so a
/// zero hint prints a deterministic "0.0").
std::string format_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1e6);
  return buf;
}

// ---- request byte costs (the quota currency: output floats for reads,
// payload floats for compress). Invalid indices cost 0 instead of throwing:
// admission must never fail a malformed request synchronously — the body
// throws through the future, where existing callers expect it.

std::size_t compress_cost(const CompressJob& job) {
  std::size_t total = 0;
  for (const CompressField& f : job.fields) {
    total += f.data.size() * sizeof(float);
  }
  return total;
}

std::size_t decompress_cost(const pipeline::ArchiveReader& reader) {
  std::size_t total = 0;
  for (const pipeline::FieldEntry& f : reader.fields()) {
    total += static_cast<std::size_t>(f.dims.count()) * sizeof(float);
  }
  return total;
}

std::size_t chunk_cost(const pipeline::ArchiveReader& reader,
                       std::size_t field, std::size_t chunk) {
  const auto& fields = reader.fields();
  if (field >= fields.size() || chunk >= fields[field].chunks.size()) {
    return 0;
  }
  return static_cast<std::size_t>(fields[field].chunks[chunk].dims.count()) *
         sizeof(float);
}

std::size_t range_cost(std::uint64_t elem_begin, std::uint64_t elem_end) {
  if (elem_end <= elem_begin) return 0;
  return static_cast<std::size_t>(elem_end - elem_begin) * sizeof(float);
}

}  // namespace

CompressionService::CompressionService(ServiceConfig config)
    : config_(normalize(std::move(config))),
      pool_(config_.workers),
      scheduler_(pool_) {
  dispatchers_.reserve(config_.dispatchers);
  for (std::size_t i = 0; i < config_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
  sweeper_ = std::thread([this] { sweeper_loop(); });
}

CompressionService::~CompressionService() { shutdown(); }

ClientId CompressionService::open_client(ClientOptions options) {
  if (stopped()) {
    throw ServiceStopped("open_client: service is shut down");
  }
  auto ctx = clients_.open(std::move(options));
  if (obs::enabled()) {
    service_metrics().active_clients.set(
        static_cast<std::int64_t>(clients_.size()));
  }
  return ctx->id();
}

void CompressionService::close_client(ClientId id) {
  clients_.close(id);  // throws ClientError on unknown ids (double close)
  if (obs::enabled()) {
    auto& m = service_metrics();
    m.active_clients.set(static_cast<std::int64_t>(clients_.size()));
    m.open_readers.set(static_cast<std::int64_t>(clients_.open_readers()));
  }
}

ArchiveHandle CompressionService::open_archive(
    ClientId id, std::shared_ptr<const pipeline::ByteSource> source) {
  auto client = clients_.find(id);
  std::uint64_t evicted = 0;
  const ArchiveHandle handle =
      client->open_reader(std::move(source), config_.reader,
                          config_.max_open_readers_per_client, &evicted);
  if (evicted != 0) {
    readers_evicted_.add(evicted);
  }
  if (obs::enabled()) {
    auto& m = service_metrics();
    if (evicted != 0) m.readers_evicted.add(evicted);
    m.open_readers.set(static_cast<std::int64_t>(clients_.open_readers()));
  }
  return handle;
}

void CompressionService::close_archive(ClientId id, ArchiveHandle handle) {
  clients_.find(id)->close_reader(handle);
  if (obs::enabled()) {
    service_metrics().open_readers.set(
        static_cast<std::int64_t>(clients_.open_readers()));
  }
}

std::uint64_t CompressionService::retry_after_ns_locked() const {
  if (drain_ewma_ns_ <= 0.0) return 0;  // no drain observed yet
  return static_cast<std::uint64_t>(drain_ewma_ns_ *
                                    static_cast<double>(queue_.size()));
}

RequestId CompressionService::admit(RequestClass cls,
                                    std::shared_ptr<RequestState> state,
                                    std::function<void()> run) {
  ClientContext& client = *state->client;
  std::function<void()> shed_run;
  RequestId id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw ServiceStopped("submit: service is shut down");
    }
    const std::string queue_suffix =
        "; queue depth " + std::to_string(queue_.size()) + "/" +
        std::to_string(config_.max_queue_depth) + ")";
    // Client-local limits first (nothing to roll back, and shedding a queue
    // victim for a request the client's own caps then reject would waste
    // admitted work): slot cap, then byte quota, then queue high-water.
    if (!client.try_acquire_slot(config_.max_inflight_per_client)) {
      rejected_client_cap_.add(1);
      if (obs::enabled()) service_metrics().rejected_client_cap.add(1);
      throw ServiceBusy("submit: client " + std::to_string(client.id()) +
                        " at in-flight cap (" +
                        std::to_string(client.inflight()) + "/" +
                        std::to_string(config_.max_inflight_per_client) +
                        queue_suffix);
    }
    if (!client.try_acquire_bytes(state->bytes,
                                  config_.max_inflight_bytes_per_client)) {
      client.release_slot();
      rejected_quota_.add(1);
      if (obs::enabled()) service_metrics().rejected_quota.add(1);
      throw ServiceBusy(
          "submit: client " + std::to_string(client.id()) +
          " over byte quota (in flight " +
          std::to_string(client.inflight_bytes()) + " + request " +
          std::to_string(state->bytes) + " > " +
          std::to_string(config_.max_inflight_bytes_per_client) +
          queue_suffix);
    }
    if (queue_.size() >= config_.max_queue_depth) {
      auto victim = queue_.shed_below(state->priority);
      if (!victim) {
        // Nothing below the incoming priority to displace: the incoming
        // request is the one rejected. Roll back its reservations.
        client.release_bytes(state->bytes);
        client.release_slot();
        rejected_busy_.add(1);
        if (obs::enabled()) {
          auto& m = service_metrics();
          m.rejected_busy.add(1);
          m.shed_rejected.add(1);
        }
        const std::uint64_t hint = retry_after_ns_locked();
        throw ServiceOverloaded(
            "submit: queue overloaded (depth " +
                std::to_string(queue_.size()) + "/" +
                std::to_string(config_.max_queue_depth) + "; client " +
                std::to_string(client.id()) + " in-flight " +
                std::to_string(client.inflight()) + "/" +
                std::to_string(config_.max_inflight_per_client) +
                "; retry-after ~" + format_ms(hint) + " ms)",
            hint);
      }
      // A lower-priority victim makes room: its future settles with
      // ServiceOverloaded on this thread, after the lock drops. The verdict
      // is written before the release-store on the flag the body acquires.
      const auto vit = live_.find(victim->id);
      if (vit != live_.end()) {
        RequestState& vs = *vit->second;
        const std::uint64_t hint = retry_after_ns_locked();
        vs.shed_retry_after_ns = hint;
        vs.shed_message =
            "request " + std::to_string(victim->id) +
            " shed under overload by " +
            priority_name(state->priority) + "-priority submit (queue depth " +
            std::to_string(queue_.size() + 1) + "/" +
            std::to_string(config_.max_queue_depth) + "; retry-after ~" +
            format_ms(hint) + " ms)";
        vs.shed.store(true, std::memory_order_release);
      }
      queue_depth_gauge_.sub(1);
      if (obs::enabled()) {
        service_metrics().queue_depth.set(queue_depth_gauge_.value());
      }
      shed_run = std::move(victim->run);
    }
    // Admitted: from here to push nothing throws, so acquired slot/bytes
    // are always matched by run_counted()'s release inside the request body.
    state->id = next_request_id_++;
    id = state->id;
    live_.emplace(id, state);
    accepted_.add(1);
    inflight_gauge_.add(1);
    inflight_bytes_gauge_.add(static_cast<std::int64_t>(state->bytes));
    queue_depth_gauge_.add(1);
    const bool telemetry = obs::enabled();
    if (telemetry) {
      auto& m = service_metrics();
      m.accepted.add(1);
      m.inflight.set(inflight_gauge_.value());
      m.inflight_bytes.set(inflight_bytes_gauge_.value());
      m.queue_depth.set(queue_depth_gauge_.value());
    }
    queue_.push(QueuedRequest{id, state->priority, cls,
                              telemetry ? obs::now_ns() : 0,
                              state->deadline_ns, std::move(run)});
  }
  // The shed victim's packaged task runs OUTSIDE the lock: its body throws
  // the ServiceOverloaded verdict and run_counted settles its accounting.
  if (shed_run) shed_run();
  wake_.notify_one();
  return id;
}

void CompressionService::dispatcher_loop() {
  for (;;) {
    QueuedRequest req;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping and fully drained
      auto popped = queue_.pop();
      req = std::move(*popped);
      queue_depth_gauge_.sub(1);
      // Drain-rate EWMA over dispatcher inter-pop gaps feeds the
      // retry-after hints; always-on (steady clock, no telemetry needed).
      const std::uint64_t now = obs::now_ns();
      if (last_pop_ns_ != 0) {
        const double inter = static_cast<double>(now - last_pop_ns_);
        drain_ewma_ns_ = drain_ewma_ns_ == 0.0
                             ? inter
                             : 0.2 * inter + 0.8 * drain_ewma_ns_;
      }
      last_pop_ns_ = now;
      if (obs::enabled()) {
        service_metrics().queue_depth.set(queue_depth_gauge_.value());
      }
    }
    const auto ci = static_cast<std::size_t>(req.cls);
    if (req.enqueue_ns != 0) {
      service_metrics().queue_wait[ci]->record(obs::now_ns() - req.enqueue_ns);
    }
    {
      obs::ScopedOp op(span_name(req.cls), service_metrics().latency[ci]);
      req.run();  // packaged_task: request exceptions land in the future
    }
  }
}

void CompressionService::sweeper_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    sweep_wake_.wait_for(lock, config_.sweep_interval,
                         [this] { return stopping_; });
    if (stopping_) break;
    std::vector<QueuedRequest> expired = queue_.expire(obs::now_ns());
    if (!expired.empty()) {
      queue_depth_gauge_.sub(static_cast<std::int64_t>(expired.size()));
    }
    if (obs::enabled()) {
      auto& m = service_metrics();
      if (!expired.empty()) {
        m.queue_depth.set(queue_depth_gauge_.value());
        m.expired_queued.add(expired.size());
      }
      // Queue-age gauges: how long the OLDEST queued request of each class
      // has been waiting (0 when the class is empty or admitted without
      // telemetry).
      const std::uint64_t now = obs::now_ns();
      for (std::size_t p = 0; p < kPriorityClasses; ++p) {
        const std::uint64_t oldest =
            queue_.oldest_enqueue_ns(static_cast<Priority>(p));
        m.queue_age[p]->set(
            oldest == 0 ? 0 : static_cast<std::int64_t>(now - oldest));
      }
    }
    if (expired.empty()) continue;
    // Settle the expired futures OUTSIDE the lock: each body re-checks its
    // deadline and throws DeadlineExceeded through run_counted.
    lock.unlock();
    for (QueuedRequest& req : expired) req.run();
    lock.lock();
  }
}

void CompressionService::throw_verdict(const RequestState& state) const {
  if (state.shed.load(std::memory_order_acquire)) {
    throw ServiceOverloaded(state.shed_message, state.shed_retry_after_ns);
  }
  if (state.cancel.cancelled()) {
    throw RequestCancelled("request " + std::to_string(state.id) +
                           " cancelled before execution");
  }
  if (state.deadline_ns != 0 && obs::now_ns() >= state.deadline_ns) {
    throw DeadlineExceeded("request " + std::to_string(state.id) +
                           " deadline exceeded before execution");
  }
}

// Settlement accounting runs INSIDE the packaged task, before it fulfills
// the future — so by the time a caller's .get() returns (or throws), the
// slot and bytes are released, the live_ entry is gone, and the outcome
// counter has settled (stats() observed right after a get() is exact, not
// racing the dispatcher's cleanup). Every admitted future lands in exactly
// one of the five outcome buckets.
template <typename Fn>
auto CompressionService::run_counted(RequestState& state, Fn&& fn)
    -> decltype(fn()) {
  const auto finish = [this, &state] {
    state.client->release_slot();
    state.client->release_bytes(state.bytes);
    inflight_gauge_.sub(1);
    inflight_bytes_gauge_.sub(static_cast<std::int64_t>(state.bytes));
    if (obs::enabled()) {
      auto& m = service_metrics();
      m.inflight.set(inflight_gauge_.value());
      m.inflight_bytes.set(inflight_bytes_gauge_.value());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    live_.erase(state.id);
  };
  try {
    auto result = fn();
    completed_.add(1);
    if (obs::enabled()) service_metrics().completed.add(1);
    finish();
    return result;
  } catch (const ServiceOverloaded&) {
    shed_.add(1);
    if (obs::enabled()) service_metrics().shed.add(1);
    finish();
    throw;
  } catch (const RequestCancelled&) {
    cancelled_.add(1);
    if (obs::enabled()) service_metrics().cancelled.add(1);
    finish();
    throw;
  } catch (const DeadlineExceeded&) {
    expired_.add(1);
    if (obs::enabled()) service_metrics().expired.add(1);
    finish();
    throw;
  } catch (...) {
    failed_.add(1);
    if (obs::enabled()) service_metrics().failed.add(1);
    finish();
    throw;
  }
}

CompressResult CompressionService::run_compress(
    const ClientContext& client, const CompressJob& job,
    const CancellationToken& cancel) const {
  const ClientOptions& opt = client.options();
  std::vector<pipeline::FieldSpec> specs;
  specs.reserve(job.fields.size());
  for (const CompressField& f : job.fields) {
    sz::CompressorConfig cfg;
    cfg.rel_error_bound = opt.rel_error_bound;
    cfg.radius = opt.radius;
    cfg.method = opt.method;
    cfg.decoder = opt.decoder;
    specs.push_back(pipeline::FieldSpec{
        f.name, std::span<const float>(f.data), f.dims, cfg, opt.chunk_elems,
        opt.plan});
  }
  pipeline::MemorySink sink;
  pipeline::ArchiveWriter writer(sink);
  scheduler_.compress_to(writer, specs, cancel);
  writer.finish();
  return CompressResult{sink.take()};
}

std::shared_ptr<CompressionService::RequestState>
CompressionService::make_state(std::shared_ptr<ClientContext> client,
                               const RequestOptions& opts, std::size_t bytes) {
  auto state = std::make_shared<RequestState>();
  state->priority = opts.priority;
  state->deadline_ns = opts.deadline.ns;
  // Always carry a LIVE token: cancel(RequestId) must be able to signal a
  // running request even when the caller never made one.
  state->cancel =
      opts.cancel.valid() ? opts.cancel : CancellationToken::make();
  state->bytes = bytes;
  state->client = std::move(client);
  return state;
}

Submission<CompressResult> CompressionService::submit_compress(
    ClientId id, CompressJob job, RequestOptions opts) {
  auto state = make_state(clients_.find(id), opts, compress_cost(job));
  auto task = std::make_shared<std::packaged_task<CompressResult()>>(
      [this, state, job = std::move(job)] {
        return run_counted(*state, [&] {
          throw_verdict(*state);
          try {
            return run_compress(*state->client, job, state->cancel);
          } catch (const pipeline::OperationCancelled&) {
            throw RequestCancelled("request " + std::to_string(state->id) +
                                   " cancelled during execution");
          }
        });
      });
  Submission<CompressResult> out;
  out.future = task->get_future();
  out.id = admit(RequestClass::Compress, std::move(state),
                 [task] { (*task)(); });
  return out;
}

Submission<pipeline::BatchDecompressResult>
CompressionService::submit_decompress(ClientId id, ArchiveHandle archive,
                                      RequestOptions opts) {
  auto client = clients_.find(id);
  // Resolve the handle NOW: a later LRU eviction must not fail an admitted
  // request, and an unknown handle must throw on the caller's thread.
  auto entry = client->reader(archive);
  auto state =
      make_state(std::move(client), opts, decompress_cost(entry->reader));
  auto task =
      std::make_shared<std::packaged_task<pipeline::BatchDecompressResult()>>(
          [this, state, entry] {
            return run_counted(*state, [&] {
              throw_verdict(*state);
              try {
                return scheduler_.decompress(entry->reader,
                                             state->client->options().decoder,
                                             state->cancel);
              } catch (const pipeline::OperationCancelled&) {
                throw RequestCancelled("request " +
                                       std::to_string(state->id) +
                                       " cancelled during execution");
              }
            });
          });
  Submission<pipeline::BatchDecompressResult> out;
  out.future = task->get_future();
  out.id = admit(RequestClass::BatchDecompress, std::move(state),
                 [task] { (*task)(); });
  return out;
}

Submission<std::vector<float>> CompressionService::submit_chunk(
    ClientId id, ArchiveHandle archive, std::size_t field, std::size_t chunk,
    RequestOptions opts) {
  auto client = clients_.find(id);
  auto entry = client->reader(archive);
  auto state = make_state(std::move(client), opts,
                          chunk_cost(entry->reader, field, chunk));
  auto task = std::make_shared<std::packaged_task<std::vector<float>()>>(
      [this, state, entry, field, chunk] {
        return run_counted(*state, [&] {
          throw_verdict(*state);
          // One chunk decodes on the dispatcher thread itself — the request
          // IS the unit of work, so bouncing it through the pool would only
          // add queueing latency. (A single chunk has no interior task
          // boundary, so a running chunk request finishes even if
          // signalled.)
          cudasim::SimContext ctx;
          return entry->reader
              .decode_chunk(ctx, field, chunk,
                            state->client->options().decoder)
              .data;
        });
      });
  Submission<std::vector<float>> out;
  out.future = task->get_future();
  out.id = admit(RequestClass::RandomAccessChunk, std::move(state),
                 [task] { (*task)(); });
  return out;
}

Submission<std::vector<float>> CompressionService::submit_range(
    ClientId id, ArchiveHandle archive, std::size_t field,
    std::uint64_t elem_begin, std::uint64_t elem_end, RequestOptions opts) {
  auto client = clients_.find(id);
  auto entry = client->reader(archive);
  auto state =
      make_state(std::move(client), opts, range_cost(elem_begin, elem_end));
  auto task = std::make_shared<std::packaged_task<std::vector<float>()>>(
      [this, state, entry, field, elem_begin, elem_end] {
        return run_counted(*state, [&] {
          throw_verdict(*state);
          try {
            return scheduler_.decode_range(entry->reader, field, elem_begin,
                                           elem_end,
                                           state->client->options().decoder,
                                           state->cancel);
          } catch (const pipeline::OperationCancelled&) {
            throw RequestCancelled("request " + std::to_string(state->id) +
                                   " cancelled during execution");
          }
        });
      });
  Submission<std::vector<float>> out;
  out.future = task->get_future();
  out.id = admit(RequestClass::RangeDecode, std::move(state),
                 [task] { (*task)(); });
  return out;
}

CancelResult CompressionService::cancel(RequestId id) {
  std::function<void()> queued_run;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = live_.find(id);
    if (it == live_.end()) {
      return CancelResult::NotFound;  // unknown or already settled: no-op
    }
    // Signal first: if the request is mid-dispatch (popped but not yet past
    // its verdict gate), the flag still lands before the body's check.
    it->second->cancel.request_cancel();
    auto removed = queue_.remove(id);
    if (!removed) {
      if (obs::enabled()) service_metrics().cancel_running.add(1);
      return CancelResult::Signalled;
    }
    queue_depth_gauge_.sub(1);
    if (obs::enabled()) {
      auto& m = service_metrics();
      m.queue_depth.set(queue_depth_gauge_.value());
      m.cancel_queued.add(1);
    }
    queued_run = std::move(removed->run);
  }
  // Settle the removed request's future on this thread, outside the lock:
  // the body's verdict gate sees the cancelled token and throws
  // RequestCancelled through run_counted.
  queued_run();
  return CancelResult::Cancelled;
}

void CompressionService::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void CompressionService::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  wake_.notify_all();
}

void CompressionService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    paused_ = false;  // a paused service still drains
  }
  wake_.notify_all();
  sweep_wake_.notify_all();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  if (sweeper_.joinable()) sweeper_.join();
}

bool CompressionService::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

void CompressionService::set_net_error_frames_source(
    std::function<std::uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(net_stats_mutex_);
  net_error_frames_fn_ = std::move(fn);
}

ServiceStats CompressionService::stats() const {
  ServiceStats s;
  {
    // Copy under the lock, call outside it: the provider reads the server's
    // own connection bookkeeping and must not nest inside service locks.
    std::function<std::uint64_t()> fn;
    {
      std::lock_guard<std::mutex> lock(net_stats_mutex_);
      fn = net_error_frames_fn_;
    }
    if (fn) s.net_error_frames = fn();
  }
  s.accepted = accepted_.value();
  s.rejected_busy = rejected_busy_.value();
  s.rejected_client_cap = rejected_client_cap_.value();
  s.rejected_quota = rejected_quota_.value();
  s.completed = completed_.value();
  s.failed = failed_.value();
  s.cancelled = cancelled_.value();
  s.expired = expired_.value();
  s.shed = shed_.value();
  s.readers_evicted = readers_evicted_.value();
  s.io_retries = clients_.io_retries();
  s.queue_depth = queue_depth_gauge_.value();
  s.queue_depth_peak = queue_depth_gauge_.peak();
  s.inflight = inflight_gauge_.value();
  s.inflight_peak = inflight_gauge_.peak();
  s.inflight_bytes = inflight_bytes_gauge_.value();
  s.inflight_bytes_peak = inflight_bytes_gauge_.peak();
  s.active_clients = clients_.size();
  s.open_readers = clients_.open_readers();
  return s;
}

std::size_t CompressionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace ohd::service
