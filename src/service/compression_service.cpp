#include "service/compression_service.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "cudasim/exec.hpp"
#include "obs/trace.hpp"

namespace ohd::service {

namespace {

/// Registry handles of the "service.*" catalogue, resolved once; recording
/// through them is lock-free. Heap-allocated so the handles (which point
/// into the process registry, itself never destroyed before exit) outlive
/// every service instance.
struct ServiceMetrics {
  obs::Counter& accepted;
  obs::Counter& rejected_busy;
  obs::Counter& rejected_client_cap;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& readers_evicted;
  obs::Gauge& queue_depth;
  obs::Gauge& inflight;
  obs::Gauge& active_clients;
  obs::Gauge& open_readers;
  obs::LatencyHistogram* queue_wait[kRequestClasses];
  obs::LatencyHistogram* latency[kRequestClasses];
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics* m = [] {
    auto& r = obs::registry();
    auto* sm = new ServiceMetrics{
        r.counter("service.accepted"),
        r.counter("service.rejected_busy"),
        r.counter("service.rejected_client_cap"),
        r.counter("service.completed"),
        r.counter("service.failed"),
        r.counter("service.readers_evicted"),
        r.gauge("service.queue_depth"),
        r.gauge("service.inflight"),
        r.gauge("service.active_clients"),
        r.gauge("service.open_readers"),
        {},
        {}};
    for (std::size_t i = 0; i < kRequestClasses; ++i) {
      const std::string base =
          std::string("service.") +
          request_class_name(static_cast<RequestClass>(i));
      sm->queue_wait[i] = &r.histogram(base + ".queue_wait_ns");
      sm->latency[i] = &r.histogram(base + ".latency_ns");
    }
    return sm;
  }();
  return *m;
}

/// Span names of the per-request ScopedOps ("service.compress", ...).
const std::string& span_name(RequestClass cls) {
  static const std::string names[kRequestClasses] = {
      "service.compress", "service.decompress", "service.chunk",
      "service.range"};
  return names[static_cast<std::size_t>(cls)];
}

ServiceConfig normalize(ServiceConfig config) {
  config.dispatchers = std::max<std::size_t>(1, config.dispatchers);
  config.max_queue_depth = std::max<std::size_t>(1, config.max_queue_depth);
  config.max_inflight_per_client =
      std::max<std::size_t>(1, config.max_inflight_per_client);
  config.max_open_readers_per_client =
      std::max<std::size_t>(1, config.max_open_readers_per_client);
  return config;
}

}  // namespace

CompressionService::CompressionService(ServiceConfig config)
    : config_(normalize(std::move(config))),
      pool_(config_.workers),
      scheduler_(pool_) {
  dispatchers_.reserve(config_.dispatchers);
  for (std::size_t i = 0; i < config_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

CompressionService::~CompressionService() { shutdown(); }

ClientId CompressionService::open_client(ClientOptions options) {
  if (stopped()) {
    throw ServiceStopped("open_client: service is shut down");
  }
  auto ctx = clients_.open(std::move(options));
  if (obs::enabled()) {
    service_metrics().active_clients.set(
        static_cast<std::int64_t>(clients_.size()));
  }
  return ctx->id();
}

void CompressionService::close_client(ClientId id) {
  clients_.close(id);  // throws ClientError on unknown ids (double close)
  if (obs::enabled()) {
    auto& m = service_metrics();
    m.active_clients.set(static_cast<std::int64_t>(clients_.size()));
    m.open_readers.set(static_cast<std::int64_t>(clients_.open_readers()));
  }
}

ArchiveHandle CompressionService::open_archive(
    ClientId id, std::shared_ptr<const pipeline::ByteSource> source) {
  auto client = clients_.find(id);
  std::uint64_t evicted = 0;
  const ArchiveHandle handle =
      client->open_reader(std::move(source), config_.reader,
                          config_.max_open_readers_per_client, &evicted);
  if (evicted != 0) {
    readers_evicted_.add(evicted);
  }
  if (obs::enabled()) {
    auto& m = service_metrics();
    if (evicted != 0) m.readers_evicted.add(evicted);
    m.open_readers.set(static_cast<std::int64_t>(clients_.open_readers()));
  }
  return handle;
}

void CompressionService::close_archive(ClientId id, ArchiveHandle handle) {
  clients_.find(id)->close_reader(handle);
  if (obs::enabled()) {
    service_metrics().open_readers.set(
        static_cast<std::int64_t>(clients_.open_readers()));
  }
}

void CompressionService::admit(RequestClass cls,
                               std::shared_ptr<ClientContext> client,
                               std::function<void()> run) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw ServiceStopped("submit: service is shut down");
    }
    if (queue_.size() >= config_.max_queue_depth) {
      rejected_busy_.add(1);
      if (obs::enabled()) service_metrics().rejected_busy.add(1);
      throw ServiceBusy("submit: request queue at high-water mark (" +
                        std::to_string(config_.max_queue_depth) + ")");
    }
    if (!client->try_acquire_slot(config_.max_inflight_per_client)) {
      rejected_client_cap_.add(1);
      if (obs::enabled()) service_metrics().rejected_client_cap.add(1);
      throw ServiceBusy("submit: client " + std::to_string(client->id()) +
                        " at in-flight cap (" +
                        std::to_string(config_.max_inflight_per_client) + ")");
    }
    // Admitted: from here to push_back nothing throws, so an acquired slot
    // is always matched by run_counted()'s release inside the request body.
    accepted_.add(1);
    inflight_gauge_.add(1);
    queue_depth_gauge_.add(1);
    const bool telemetry = obs::enabled();
    if (telemetry) {
      auto& m = service_metrics();
      m.accepted.add(1);
      m.inflight.set(inflight_gauge_.value());
      m.queue_depth.set(queue_depth_gauge_.value());
    }
    queue_.push_back(Request{cls, std::move(client), std::move(run),
                             telemetry ? obs::now_ns() : 0});
  }
  wake_.notify_one();
}

void CompressionService::dispatcher_loop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping and fully drained
      req = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_.sub(1);
      if (obs::enabled()) {
        service_metrics().queue_depth.set(queue_depth_gauge_.value());
      }
    }
    const auto ci = static_cast<std::size_t>(req.cls);
    if (req.enqueue_ns != 0) {
      service_metrics().queue_wait[ci]->record(obs::now_ns() - req.enqueue_ns);
    }
    {
      obs::ScopedOp op(span_name(req.cls), service_metrics().latency[ci]);
      req.run();  // packaged_task: request exceptions land in the future
    }
  }
}

// Completion accounting runs INSIDE the packaged task, before it fulfills
// the future — so by the time a caller's .get() returns, the slot is
// released and completed/failed/inflight have settled (stats() observed
// right after a get() is exact, not racing the dispatcher's cleanup).
template <typename Fn>
auto CompressionService::run_counted(ClientContext& client, Fn&& fn)
    -> decltype(fn()) {
  const auto finish = [this, &client] {
    client.release_slot();
    inflight_gauge_.sub(1);
    if (obs::enabled()) {
      service_metrics().inflight.set(inflight_gauge_.value());
    }
  };
  try {
    auto result = fn();
    completed_.add(1);
    if (obs::enabled()) service_metrics().completed.add(1);
    finish();
    return result;
  } catch (...) {
    failed_.add(1);
    if (obs::enabled()) service_metrics().failed.add(1);
    finish();
    throw;
  }
}

CompressResult CompressionService::run_compress(const ClientContext& client,
                                                const CompressJob& job) const {
  const ClientOptions& opt = client.options();
  std::vector<pipeline::FieldSpec> specs;
  specs.reserve(job.fields.size());
  for (const CompressField& f : job.fields) {
    sz::CompressorConfig cfg;
    cfg.rel_error_bound = opt.rel_error_bound;
    cfg.radius = opt.radius;
    cfg.method = opt.method;
    cfg.decoder = opt.decoder;
    specs.push_back(pipeline::FieldSpec{
        f.name, std::span<const float>(f.data), f.dims, cfg, opt.chunk_elems,
        opt.plan});
  }
  pipeline::MemorySink sink;
  pipeline::ArchiveWriter writer(sink);
  scheduler_.compress_to(writer, specs);
  writer.finish();
  return CompressResult{sink.take()};
}

std::future<CompressResult> CompressionService::submit_compress(
    ClientId id, CompressJob job) {
  auto client = clients_.find(id);
  auto task = std::make_shared<std::packaged_task<CompressResult()>>(
      [this, client, job = std::move(job)] {
        return run_counted(*client, [&] { return run_compress(*client, job); });
      });
  auto fut = task->get_future();
  admit(RequestClass::Compress, std::move(client),
        [task] { (*task)(); });
  return fut;
}

std::future<pipeline::BatchDecompressResult>
CompressionService::submit_decompress(ClientId id, ArchiveHandle archive) {
  auto client = clients_.find(id);
  // Resolve the handle NOW: a later LRU eviction must not fail an admitted
  // request, and an unknown handle must throw on the caller's thread.
  auto entry = client->reader(archive);
  auto task =
      std::make_shared<std::packaged_task<pipeline::BatchDecompressResult()>>(
          [this, client, entry] {
            return run_counted(*client, [&] {
              return scheduler_.decompress(entry->reader,
                                           client->options().decoder);
            });
          });
  auto fut = task->get_future();
  admit(RequestClass::BatchDecompress, std::move(client),
        [task] { (*task)(); });
  return fut;
}

std::future<std::vector<float>> CompressionService::submit_chunk(
    ClientId id, ArchiveHandle archive, std::size_t field, std::size_t chunk) {
  auto client = clients_.find(id);
  auto entry = client->reader(archive);
  auto task = std::make_shared<std::packaged_task<std::vector<float>()>>(
      [this, client, entry, field, chunk] {
        return run_counted(*client, [&] {
          // One chunk decodes on the dispatcher thread itself — the request
          // IS the unit of work, so bouncing it through the pool would only
          // add queueing latency.
          cudasim::SimContext ctx;
          return entry->reader
              .decode_chunk(ctx, field, chunk, client->options().decoder)
              .data;
        });
      });
  auto fut = task->get_future();
  admit(RequestClass::RandomAccessChunk, std::move(client),
        [task] { (*task)(); });
  return fut;
}

std::future<std::vector<float>> CompressionService::submit_range(
    ClientId id, ArchiveHandle archive, std::size_t field,
    std::uint64_t elem_begin, std::uint64_t elem_end) {
  auto client = clients_.find(id);
  auto entry = client->reader(archive);
  auto task = std::make_shared<std::packaged_task<std::vector<float>()>>(
      [this, client, entry, field, elem_begin, elem_end] {
        return run_counted(*client, [&] {
          return scheduler_.decode_range(entry->reader, field, elem_begin,
                                         elem_end, client->options().decoder);
        });
      });
  auto fut = task->get_future();
  admit(RequestClass::RangeDecode, std::move(client), [task] { (*task)(); });
  return fut;
}

void CompressionService::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void CompressionService::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  wake_.notify_all();
}

void CompressionService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    paused_ = false;  // a paused service still drains
  }
  wake_.notify_all();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
}

bool CompressionService::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

ServiceStats CompressionService::stats() const {
  ServiceStats s;
  s.accepted = accepted_.value();
  s.rejected_busy = rejected_busy_.value();
  s.rejected_client_cap = rejected_client_cap_.value();
  s.completed = completed_.value();
  s.failed = failed_.value();
  s.readers_evicted = readers_evicted_.value();
  s.queue_depth = queue_depth_gauge_.value();
  s.queue_depth_peak = queue_depth_gauge_.peak();
  s.inflight = inflight_gauge_.value();
  s.inflight_peak = inflight_gauge_.peak();
  s.active_clients = clients_.size();
  s.open_readers = clients_.open_readers();
  return s;
}

std::size_t CompressionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace ohd::service
