// Per-client state of the compression service: the ROHC-style context
// registry. Each ClientContext pins a client's negotiated ClientOptions for
// its whole lifetime and owns the client's open ArchiveReader handles behind
// an LRU cap; the ClientRegistry maps stable ClientIds to contexts with an
// explicit open/close lifecycle.
//
// Reader entries are shared_ptr-held on purpose: an LRU eviction (or a
// close_reader / close of the whole client) only drops the REGISTRY's
// reference. A request that resolved its handle before the eviction keeps
// the entry — source and reader both — alive until it finishes, so eviction
// can never invalidate an in-flight decode.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pipeline/archive_io.hpp"
#include "pipeline/byte_stream.hpp"
#include "service/service_types.hpp"

namespace ohd::service {

/// An open archive of one client: the owning ByteSource plus the
/// footer-first reader over it. The reader borrows `*source`, so `source`
/// is declared first and the pair always travels together.
struct ReaderEntry {
  std::shared_ptr<const pipeline::ByteSource> source;
  pipeline::ArchiveReader reader;

  ReaderEntry(std::shared_ptr<const pipeline::ByteSource> src,
              const pipeline::ReaderOptions& options)
      : source(std::move(src)), reader(*source, options) {}
};

/// One client's registry entry. Thread-safe: requests of the same client may
/// resolve handles, and the service may open/close archives, concurrently.
class ClientContext {
 public:
  ClientContext(ClientId id, ClientOptions options)
      : id_(id), options_(std::move(options)) {}

  ClientId id() const { return id_; }
  const ClientOptions& options() const { return options_; }

  /// Opens `source` as a new reader handle (the ArchiveReader constructor
  /// runs here and may throw ContainerError/ArchiveError on a malformed
  /// archive — nothing is registered in that case). If the client already
  /// holds `cap` readers, the least-recently-used ones are evicted to make
  /// room; `evicted`, when non-null, is incremented per eviction.
  ArchiveHandle open_reader(std::shared_ptr<const pipeline::ByteSource> source,
                            const pipeline::ReaderOptions& options,
                            std::size_t cap, std::uint64_t* evicted = nullptr);

  /// Resolves a handle to its (shared) entry and marks it most recently
  /// used. Throws ClientError on unknown handles — including ones the LRU
  /// has evicted.
  std::shared_ptr<ReaderEntry> reader(ArchiveHandle handle) const;

  /// Explicitly closes a handle. Throws ClientError if it is not open.
  void close_reader(ArchiveHandle handle);

  std::size_t open_reader_count() const;

  /// Reserves an in-flight slot if the client is under `cap`; the matching
  /// release_slot() must run when the request leaves the service (complete,
  /// failed, cancelled, shed, or expired).
  bool try_acquire_slot(std::size_t cap);
  void release_slot();
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// Reserves `bytes` of the client's in-flight byte quota; fails when the
  /// reservation would push the client past `quota`. The matching
  /// release_bytes(bytes) must run when the request leaves the service —
  /// exactly once, on every outcome.
  bool try_acquire_bytes(std::size_t bytes, std::size_t quota);
  void release_bytes(std::size_t bytes);
  std::uint64_t inflight_bytes() const {
    return inflight_bytes_.load(std::memory_order_relaxed);
  }

  /// Lifetime total of transient-IO retries by this client's readers:
  /// retries of the currently open ones plus everything harvested from
  /// evicted/closed readers at eviction/close time (retries an in-flight
  /// request performs on an already-harvested reader are not re-counted).
  std::uint64_t io_retries() const;

 private:
  const ClientId id_;
  const ClientOptions options_;

  struct Slot {
    std::list<ArchiveHandle>::iterator lru_pos;
    std::shared_ptr<ReaderEntry> entry;
  };
  mutable std::mutex mutex_;
  /// Most recently used at the front; eviction pops the back.
  mutable std::list<ArchiveHandle> lru_;
  std::unordered_map<ArchiveHandle, Slot> readers_;
  ArchiveHandle next_handle_ = 1;
  /// Retries of readers no longer in readers_, folded in when they left.
  std::uint64_t retired_io_retries_ = 0;

  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> inflight_bytes_{0};
};

/// ClientId -> context map with an open/find/close lifecycle. Ids are
/// assigned monotonically from 1 and never reused; find/close on an unknown
/// (or already closed) id throws ClientError, which is what makes a
/// double close an error rather than a no-op.
class ClientRegistry {
 public:
  std::shared_ptr<ClientContext> open(ClientOptions options);
  /// Throws ClientError on unknown/closed ids.
  std::shared_ptr<ClientContext> find(ClientId id) const;
  /// Removes and returns the context (in-flight requests holding it keep it
  /// alive). Throws ClientError on unknown/closed ids.
  std::shared_ptr<ClientContext> close(ClientId id);

  std::size_t size() const;
  /// Sum of open_reader_count() over all active clients.
  std::size_t open_readers() const;
  /// Lifetime transient-IO retry total across ALL clients ever registered:
  /// active clients' io_retries() plus the totals harvested from clients at
  /// close_client time.
  std::uint64_t io_retries() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<ClientId, std::shared_ptr<ClientContext>> clients_;
  ClientId next_id_ = 1;
  /// io_retries() of clients harvested at close().
  std::uint64_t retired_io_retries_ = 0;
};

}  // namespace ohd::service
