// Shared vocabulary of the compression service front end (see
// docs/service_api.md for the full reference): client/archive identifiers,
// the per-client negotiated options, the service-wide limits, the typed
// request payloads/results, and the service error taxonomy.
//
// Errors derive std::runtime_error (not std::invalid_argument like the
// pipeline's format errors) because they describe SERVICE state — a full
// queue, a stopped service, a closed client — not malformed input. Pipeline
// errors (ContainerError, ArchiveError) still surface unchanged through a
// request's future when the request itself touches bad data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/huffman_codec.hpp"
#include "pipeline/archive_io.hpp"
#include "pipeline/method_selector.hpp"
#include "sz/lorenzo.hpp"

namespace ohd::service {

/// Any failure raised by the service layer itself.
class ServiceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Admission rejection: the request queue is at its high-water mark or the
/// client is at its in-flight cap. The request was NOT enqueued; retrying
/// after a backoff is the expected client response.
class ServiceBusy : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

/// The service has been shut down (or is draining); no new work is accepted.
class ServiceStopped : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

/// Client-lifecycle violation: unknown or already-closed client id, unknown
/// (or LRU-evicted) archive handle, double close.
class ClientError : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

/// Stable client identity, assigned by open_client and valid until
/// close_client. Ids are never reused within a service's lifetime.
using ClientId = std::uint64_t;

/// Per-client handle to an open ArchiveReader, assigned by open_archive.
/// Handles are scoped to their client and never reused within its lifetime;
/// a handle evicted by the reader LRU behaves exactly like a closed one.
using ArchiveHandle = std::uint64_t;

/// The four request classes the service multiplexes. Each class gets its own
/// queue-wait and service-latency histograms ("service.<name>.*", see
/// request_class_name).
enum class RequestClass : std::uint8_t {
  Compress = 0,          // whole-job compress -> archive bytes
  BatchDecompress = 1,   // all fields of an open archive
  RandomAccessChunk = 2, // one chunk of one field
  RangeDecode = 3,       // an element range of one field
};
inline constexpr std::size_t kRequestClasses = 4;

/// Metric/label segment of a request class: "compress", "decompress",
/// "chunk", "range".
const char* request_class_name(RequestClass cls);

/// Negotiated per-client compression parameters, fixed at open_client (the
/// ROHC-style context: one long-lived entry per client holding everything a
/// request needs beyond its payload). Every request of the client is
/// executed under these.
struct ClientOptions {
  /// Error bound of compress requests, relative to each field's value range.
  double rel_error_bound = 1e-3;
  std::uint32_t radius = 512;
  core::Method method = core::Method::GapArrayOptimized;
  /// Decode-path selection applied to every decompress/chunk/range request.
  core::DecoderConfig decoder;
  std::size_t chunk_elems = std::size_t{1} << 16;
  /// Adaptive planning (per-chunk method selection / shared codebooks) for
  /// compress requests.
  pipeline::PlanOptions plan;
};

/// Service-wide sizing and admission limits, fixed at construction.
struct ServiceConfig {
  /// ThreadPool workers shared by every request (0 = hardware concurrency).
  std::size_t workers = 4;
  /// Dispatcher threads draining the request queue: the number of requests
  /// that EXECUTE concurrently (each one fans its chunk tasks onto the
  /// shared pool). At least 1.
  std::size_t dispatchers = 2;
  /// Admission high-water mark: a submit that would make the number of
  /// PENDING (queued, not yet executing) requests exceed this is rejected
  /// with ServiceBusy. At least 1.
  std::size_t max_queue_depth = 64;
  /// Per-client cap on in-flight requests (pending + executing); submits
  /// beyond it are rejected with ServiceBusy.
  std::size_t max_inflight_per_client = 8;
  /// Per-client LRU cap on open ArchiveReader handles: opening one more
  /// evicts the least-recently-used handle (in-flight requests already
  /// holding the evicted reader finish unharmed — the entry is shared, not
  /// destroyed).
  std::size_t max_open_readers_per_client = 4;
  /// Retry policy applied to every reader the service opens.
  pipeline::ReaderOptions reader;
};

/// One field of a compress request. The service owns the floats for the
/// request's queued lifetime, so the submitting thread may release its copy
/// immediately.
struct CompressField {
  std::string name;
  std::vector<float> data;
  sz::Dims dims;
};

struct CompressJob {
  std::vector<CompressField> fields;
};

/// A finished compress request: a complete v3 archive image (byte-identical
/// for any worker count). Feed it back through open_archive via an
/// OwningMemorySource, or write it to storage as-is.
struct CompressResult {
  std::vector<std::uint8_t> archive;
};

/// Always-on accounting snapshot (exact regardless of the telemetry flag;
/// the obs registry additionally aggregates the same values under
/// "service.*" while obs::enabled()).
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;        // queue high-water rejections
  std::uint64_t rejected_client_cap = 0;  // per-client in-flight rejections
  std::uint64_t completed = 0;            // futures fulfilled with a value
  std::uint64_t failed = 0;               // futures fulfilled with an error
  std::uint64_t readers_evicted = 0;      // LRU evictions across all clients
  std::int64_t queue_depth = 0;           // pending requests right now
  std::int64_t queue_depth_peak = 0;
  std::int64_t inflight = 0;              // pending + executing right now
  std::int64_t inflight_peak = 0;
  std::size_t active_clients = 0;
  std::size_t open_readers = 0;

  std::uint64_t rejected() const { return rejected_busy + rejected_client_cap; }
};

}  // namespace ohd::service
