// Shared vocabulary of the compression service front end (see
// docs/service_api.md for the full reference): client/archive identifiers,
// the per-client negotiated options, the service-wide limits, the typed
// request payloads/results, and the service error taxonomy.
//
// Errors derive std::runtime_error (not std::invalid_argument like the
// pipeline's format errors) because they describe SERVICE state — a full
// queue, a stopped service, a closed client — not malformed input. Pipeline
// errors (ContainerError, ArchiveError) still surface unchanged through a
// request's future when the request itself touches bad data.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/huffman_codec.hpp"
#include "pipeline/archive_io.hpp"
#include "pipeline/cancel.hpp"
#include "pipeline/method_selector.hpp"
#include "sz/lorenzo.hpp"

namespace ohd::service {

/// Any failure raised by the service layer itself.
class ServiceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Admission rejection: the request queue is at its high-water mark, the
/// client is at its in-flight cap, or the client is over its byte quota. The
/// request was NOT enqueued; retrying after a backoff is the expected client
/// response. The message always carries the observed queue depth and the
/// client's in-flight count at rejection time.
class ServiceBusy : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

/// Overload rejection/shed verdict: the queue was full of work the request's
/// priority could not displace (thrown at submit), or the request WAS queued
/// and later shed to make room for higher-priority work (surfaced through
/// its future). Derives ServiceBusy — every retry loop written against
/// ServiceBusy keeps working — and adds a retry-after hint derived from the
/// observed queue drain rate (0 until the service has drained anything).
class ServiceOverloaded : public ServiceBusy {
 public:
  ServiceOverloaded(const std::string& what, std::uint64_t retry_after_ns)
      : ServiceBusy(what), retry_after_ns_(retry_after_ns) {}

  /// Suggested client backoff before resubmitting, in nanoseconds:
  /// queue_depth x EWMA inter-completion time at rejection/shed time.
  std::uint64_t retry_after_ns() const { return retry_after_ns_; }

 private:
  std::uint64_t retry_after_ns_ = 0;
};

/// The service has been shut down (or is draining); no new work is accepted.
class ServiceStopped : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

/// The request was cancelled — via CompressionService::cancel(RequestId) or
/// the caller's CancellationToken — before or during execution. Surfaced
/// through the request's future; the request's admitted slot and bytes are
/// released when it lands.
class RequestCancelled : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

/// The request's deadline passed before it finished: the sweeper expired it
/// in the queue, or the dispatcher refused to start it late. Surfaced
/// through the request's future.
class DeadlineExceeded : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

/// Client-lifecycle violation: unknown or already-closed client id, unknown
/// (or LRU-evicted) archive handle, double close.
class ClientError : public ServiceError {
 public:
  using ServiceError::ServiceError;
};

/// Stable client identity, assigned by open_client and valid until
/// close_client. Ids are never reused within a service's lifetime.
using ClientId = std::uint64_t;

/// Per-client handle to an open ArchiveReader, assigned by open_archive.
/// Handles are scoped to their client and never reused within its lifetime;
/// a handle evicted by the reader LRU behaves exactly like a closed one.
using ArchiveHandle = std::uint64_t;

/// Service-wide identity of one admitted request, assigned at submit and
/// never reused within a service's lifetime (0 is never assigned, so it can
/// serve as "no request" in caller bookkeeping). The target of cancel().
using RequestId = std::uint64_t;

/// Cooperative cancellation handle, shared with the batch pipeline: the
/// service polls it at its own verdict points (queue removal, dispatch,
/// between chunks via BatchScheduler) and callers may keep a copy to
/// request_cancel() without knowing the RequestId.
using CancellationToken = pipeline::CancelToken;

/// Scheduling priority of a request. The queue pops weighted round-robin
/// (Interactive 4 : Batch 2 : Background 1 credits per cycle), so every
/// class keeps draining under saturation — the starvation bound is at least
/// `weight` pops per 7 under continuous load — and overload sheds the
/// NEWEST queued request of the lowest populated class first.
enum class Priority : std::uint8_t {
  Interactive = 0,
  Batch = 1,
  Background = 2,
};
inline constexpr std::size_t kPriorityClasses = 3;

/// Metric/label segment of a priority: "interactive", "batch", "background".
const char* priority_name(Priority priority);

/// Absolute completion deadline carried by a request. Expressed on the
/// obs::now_ns() steady clock; Deadline{} (ns == 0) means "none".
struct Deadline {
  std::uint64_t ns = 0;

  /// A deadline `d` from now on the service's steady clock.
  static Deadline after(std::chrono::nanoseconds d);
  /// No deadline (the default).
  static Deadline none() { return {}; }

  bool valid() const { return ns != 0; }
};

/// Optional per-request scheduling envelope, accepted by every submit_*.
/// Default-constructed options reproduce the PR 8 behaviour exactly: Batch
/// priority, no deadline, no caller-held cancellation token.
struct RequestOptions {
  Priority priority = Priority::Batch;
  Deadline deadline;
  /// A caller-held token: pass CancellationToken::make() and keep a copy to
  /// cancel without the RequestId. Inert (default) tokens cost nothing.
  CancellationToken cancel;
};

/// What an accepted submit returns: the future plus the RequestId that
/// cancel() takes. get()/wait() forward to the future so result-only call
/// sites read exactly as before (`submit_...(...).get()`).
template <typename T>
struct Submission {
  RequestId id = 0;
  std::future<T> future;

  T get() { return future.get(); }
  void wait() const { future.wait(); }
  bool valid() const { return future.valid(); }
};

/// The four request classes the service multiplexes. Each class gets its own
/// queue-wait and service-latency histograms ("service.<name>.*", see
/// request_class_name).
enum class RequestClass : std::uint8_t {
  Compress = 0,          // whole-job compress -> archive bytes
  BatchDecompress = 1,   // all fields of an open archive
  RandomAccessChunk = 2, // one chunk of one field
  RangeDecode = 3,       // an element range of one field
};
inline constexpr std::size_t kRequestClasses = 4;

/// Metric/label segment of a request class: "compress", "decompress",
/// "chunk", "range".
const char* request_class_name(RequestClass cls);

/// Negotiated per-client compression parameters, fixed at open_client (the
/// ROHC-style context: one long-lived entry per client holding everything a
/// request needs beyond its payload). Every request of the client is
/// executed under these.
struct ClientOptions {
  /// Error bound of compress requests, relative to each field's value range.
  double rel_error_bound = 1e-3;
  std::uint32_t radius = 512;
  core::Method method = core::Method::GapArrayOptimized;
  /// Decode-path selection applied to every decompress/chunk/range request.
  core::DecoderConfig decoder;
  std::size_t chunk_elems = std::size_t{1} << 16;
  /// Adaptive planning (per-chunk method selection / shared codebooks) for
  /// compress requests.
  pipeline::PlanOptions plan;
};

/// Service-wide sizing and admission limits, fixed at construction.
struct ServiceConfig {
  /// ThreadPool workers shared by every request (0 = hardware concurrency).
  std::size_t workers = 4;
  /// Dispatcher threads draining the request queue: the number of requests
  /// that EXECUTE concurrently (each one fans its chunk tasks onto the
  /// shared pool). At least 1.
  std::size_t dispatchers = 2;
  /// Admission high-water mark: a submit that would make the number of
  /// PENDING (queued, not yet executing) requests exceed this is rejected
  /// with ServiceBusy. At least 1.
  std::size_t max_queue_depth = 64;
  /// Per-client cap on in-flight requests (pending + executing); submits
  /// beyond it are rejected with ServiceBusy.
  std::size_t max_inflight_per_client = 8;
  /// Per-client cap on in-flight BYTES (payload floats of a compress, output
  /// floats of a decompress/chunk/range), admitted at submit and released
  /// when the request's future lands — completion, failure, cancel, shed, or
  /// expiry alike. Submits over the quota are rejected with ServiceBusy.
  std::size_t max_inflight_bytes_per_client = std::size_t{1} << 30;
  /// Per-client LRU cap on open ArchiveReader handles: opening one more
  /// evicts the least-recently-used handle (in-flight requests already
  /// holding the evicted reader finish unharmed — the entry is shared, not
  /// destroyed).
  std::size_t max_open_readers_per_client = 4;
  /// Retry policy applied to every reader the service opens.
  pipeline::ReaderOptions reader;
  /// Deadline-sweeper wakeup period: queued requests whose deadline passed
  /// are expired at most this long after the fact (dispatch re-checks the
  /// deadline too, so an expired request never starts even if the sweeper
  /// has not run yet).
  std::chrono::microseconds sweep_interval = std::chrono::microseconds(1000);

  // ---- network front end defaults (consumed by net::ServiceServer) ----
  // The service itself never opens sockets; these live here so one config
  // sizes a whole deployment. net::ServiceServer(service) reads them;
  // constructing a server with an explicit net::ServerConfig ignores them.

  /// Listen on TCP loopback (127.0.0.1). Port 0 binds an ephemeral port,
  /// resolved in the server's endpoints().
  bool listen_tcp = false;
  std::uint16_t listen_tcp_port = 0;
  /// When nonempty, additionally listen on this Unix domain socket path.
  std::string listen_unix_path;
};

/// One field of a compress request. The service owns the floats for the
/// request's queued lifetime, so the submitting thread may release its copy
/// immediately.
struct CompressField {
  std::string name;
  std::vector<float> data;
  sz::Dims dims;
};

struct CompressJob {
  std::vector<CompressField> fields;
};

/// A finished compress request: a complete v3 archive image (byte-identical
/// for any worker count). Feed it back through open_archive via an
/// OwningMemorySource, or write it to storage as-is.
struct CompressResult {
  std::vector<std::uint8_t> archive;
};

/// Always-on accounting snapshot (exact regardless of the telemetry flag;
/// the obs registry additionally aggregates the same values under
/// "service.*" while obs::enabled()).
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;        // queue high-water rejections
  std::uint64_t rejected_client_cap = 0;  // per-client in-flight rejections
  std::uint64_t rejected_quota = 0;       // per-client byte-quota rejections
  std::uint64_t completed = 0;            // futures fulfilled with a value
  std::uint64_t failed = 0;               // futures fulfilled with an error
  std::uint64_t cancelled = 0;            // futures holding RequestCancelled
  std::uint64_t expired = 0;              // futures holding DeadlineExceeded
  std::uint64_t shed = 0;                 // queued, then shed under overload
  std::uint64_t readers_evicted = 0;      // LRU evictions across all clients
  /// Transient-IO retries performed by the readers the service opened, over
  /// its whole lifetime (closed/evicted readers keep counting): operator
  /// visibility into fault pressure without a telemetry snapshot.
  std::uint64_t io_retries = 0;
  /// Typed error frames the attached network front end has sent, over its
  /// whole lifetime: live connections' counts plus totals harvested exactly
  /// once when a connection closes (the io_retries discipline). 0 when no
  /// net::ServiceServer is attached — server-side rejects are visible here
  /// without scraping logs.
  std::uint64_t net_error_frames = 0;
  std::int64_t queue_depth = 0;           // pending requests right now
  std::int64_t queue_depth_peak = 0;
  std::int64_t inflight = 0;              // pending + executing right now
  std::int64_t inflight_peak = 0;
  std::int64_t inflight_bytes = 0;        // admitted bytes not yet released
  std::int64_t inflight_bytes_peak = 0;
  std::size_t active_clients = 0;
  std::size_t open_readers = 0;

  std::uint64_t rejected() const {
    return rejected_busy + rejected_client_cap + rejected_quota;
  }
  /// Every admitted future lands in exactly one of these five buckets, so
  /// after a drain accepted == settled().
  std::uint64_t settled() const {
    return completed + failed + cancelled + expired + shed;
  }
};

}  // namespace ohd::service
