// PriorityRequestQueue: the three-class scheduling queue behind
// CompressionService's dispatchers. Replaces the PR 8 FIFO with one FIFO per
// Priority class and a credit-based weighted pop (Interactive 4 : Batch 2 :
// Background 1) — under saturation every class drains at its weight's share
// of pops, so the starvation bound is explicit: any non-empty class is
// popped at least `weight` times per 7 pops. When only some classes hold
// work, their relative weights still apply and no pop is ever wasted on an
// empty class.
//
// The queue is NOT internally synchronized: CompressionService guards every
// call with its own mutex (the queue is one piece of the service's larger
// admission/dispatch critical sections, and a second lock here would only
// add ordering hazards). Removal paths — cancel, shed, expire — hand the
// removed requests BACK to the caller instead of dropping them, because
// every admitted future must still be fulfilled: the service runs the
// removed task inline (outside its lock) so the request body can throw its
// verdict error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "service/service_types.hpp"

namespace ohd::service {

/// One queued (admitted, not yet executing) request.
struct QueuedRequest {
  RequestId id = 0;
  Priority priority = Priority::Batch;
  RequestClass cls = RequestClass::Compress;
  /// now_ns() at admission when telemetry was enabled, else 0 (feeds the
  /// queue-wait histogram; see CompressionService::Request in PR 8).
  std::uint64_t enqueue_ns = 0;
  /// Absolute deadline on the obs::now_ns() clock, 0 = none.
  std::uint64_t deadline_ns = 0;
  /// The packaged request body; fulfills the future exactly once when run.
  std::function<void()> run;
};

class PriorityRequestQueue {
 public:
  void push(QueuedRequest req);

  /// Weighted pop: chooses the class by the credit cycle described above,
  /// FIFO within the class. Empty queue returns nullopt.
  std::optional<QueuedRequest> pop();

  /// Removes a queued request by id (cancel path). Returns it so the caller
  /// can settle its future; nullopt if the id is not queued (already
  /// dispatched or never existed).
  std::optional<QueuedRequest> remove(RequestId id);

  /// Overload shedding: removes the NEWEST queued request of the lowest
  /// populated class STRICTLY below `incoming` (Background before Batch;
  /// Interactive is never shed). Returns nullopt when nothing below the
  /// incoming priority is queued — the incoming request is the one that
  /// must be rejected then.
  std::optional<QueuedRequest> shed_below(Priority incoming);

  /// Deadline sweep: removes every queued request whose deadline passed at
  /// `now_ns`, in (priority, FIFO) order.
  std::vector<QueuedRequest> expire(std::uint64_t now_ns);

  /// Everything still queued, in (priority, FIFO) order (shutdown drain).
  std::vector<QueuedRequest> drain();

  /// Admission enqueue-time of the OLDEST queued request of a class, 0 when
  /// that class is empty (feeds the per-class queue-age gauges).
  std::uint64_t oldest_enqueue_ns(Priority priority) const;

  std::size_t size() const;
  std::size_t size(Priority priority) const;
  bool empty() const { return size() == 0; }

 private:
  std::deque<QueuedRequest>& lane(Priority p) {
    return lanes_[static_cast<std::size_t>(p)];
  }
  const std::deque<QueuedRequest>& lane(Priority p) const {
    return lanes_[static_cast<std::size_t>(p)];
  }

  std::deque<QueuedRequest> lanes_[kPriorityClasses];
  /// Remaining pops each class may take in the current credit cycle; all
  /// zero (or only empty classes funded) starts the next cycle.
  std::size_t credits_[kPriorityClasses] = {0, 0, 0};
};

}  // namespace ohd::service
