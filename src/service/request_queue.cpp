#include "service/request_queue.hpp"

#include <algorithm>

namespace ohd::service {

namespace {

/// Credits granted to each class per cycle. The starvation bound quoted in
/// the header follows directly: a cycle funds 4+2+1 = 7 pops, and a class
/// that stays non-empty spends its whole grant every cycle.
constexpr std::size_t kWeights[kPriorityClasses] = {4, 2, 1};

}  // namespace

void PriorityRequestQueue::push(QueuedRequest req) {
  lane(req.priority).push_back(std::move(req));
}

std::optional<QueuedRequest> PriorityRequestQueue::pop() {
  if (empty()) return std::nullopt;
  // A class can spend a credit only while it holds work; when no populated
  // class has credits left, refund the full grant. The refund considers
  // POPULATED classes only, so an empty Interactive lane cannot hoard the
  // cycle while Batch and Background wait.
  bool spendable = false;
  for (std::size_t p = 0; p < kPriorityClasses; ++p) {
    if (credits_[p] > 0 && !lanes_[p].empty()) spendable = true;
  }
  if (!spendable) {
    for (std::size_t p = 0; p < kPriorityClasses; ++p) {
      credits_[p] = kWeights[p];
    }
  }
  for (std::size_t p = 0; p < kPriorityClasses; ++p) {
    if (credits_[p] == 0 || lanes_[p].empty()) continue;
    --credits_[p];
    QueuedRequest req = std::move(lanes_[p].front());
    lanes_[p].pop_front();
    return req;
  }
  // Unreachable: the refund above funded every class and some lane is
  // non-empty, so the scan must have popped.
  return std::nullopt;
}

std::optional<QueuedRequest> PriorityRequestQueue::remove(RequestId id) {
  for (auto& q : lanes_) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->id == id) {
        QueuedRequest req = std::move(*it);
        q.erase(it);
        return req;
      }
    }
  }
  return std::nullopt;
}

std::optional<QueuedRequest> PriorityRequestQueue::shed_below(
    Priority incoming) {
  // Lowest populated class first (Background, then Batch), newest request
  // of that class: the work least likely to be waited on and the cheapest
  // loss of queue progress.
  const auto inc = static_cast<std::size_t>(incoming);
  for (std::size_t p = kPriorityClasses; p-- > 0;) {
    if (p <= inc) break;  // only classes STRICTLY below the incoming one
    if (lanes_[p].empty()) continue;
    QueuedRequest req = std::move(lanes_[p].back());
    lanes_[p].pop_back();
    return req;
  }
  return std::nullopt;
}

std::vector<QueuedRequest> PriorityRequestQueue::expire(std::uint64_t now_ns) {
  std::vector<QueuedRequest> expired;
  for (auto& q : lanes_) {
    for (auto it = q.begin(); it != q.end();) {
      if (it->deadline_ns != 0 && it->deadline_ns <= now_ns) {
        expired.push_back(std::move(*it));
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
  return expired;
}

std::vector<QueuedRequest> PriorityRequestQueue::drain() {
  std::vector<QueuedRequest> out;
  for (auto& q : lanes_) {
    for (auto& req : q) out.push_back(std::move(req));
    q.clear();
  }
  return out;
}

std::uint64_t PriorityRequestQueue::oldest_enqueue_ns(Priority priority) const {
  const auto& q = lane(priority);
  return q.empty() ? 0 : q.front().enqueue_ns;
}

std::size_t PriorityRequestQueue::size() const {
  std::size_t n = 0;
  for (const auto& q : lanes_) n += q.size();
  return n;
}

std::size_t PriorityRequestQueue::size(Priority priority) const {
  return lane(priority).size();
}

}  // namespace ohd::service
