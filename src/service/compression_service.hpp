// CompressionService: the persistent front end of the archive stack. One
// service owns the ThreadPool and multiplexes any number of concurrent
// clients over it through a bounded, priority-classed request queue:
//
//   client threads ──submit_*()──▶ [priority queue: Interactive/Batch/
//   (Submission back: id+future)    Background, weighted pop] ──▶ dispatcher
//                                   admission control            threads ──▶
//                                   deadline sweeper             BatchScheduler
//                                                                on the shared
//                                                                ThreadPool
//
// Dispatcher threads are deliberately separate from pool workers: a request
// EXECUTES by fanning its chunk tasks onto the pool and blocking on their
// futures, so running requests on the pool itself would deadlock the moment
// every worker blocked waiting for chunk tasks that no worker is free to
// run. `dispatchers` is therefore the request-level concurrency and
// `workers` the chunk-level parallelism each request taps.
//
// Admission control (all enforced at submit, before anything is enqueued;
// checked in this order — client-local limits first, so the queue never
// sheds a victim for a request the client's own caps then reject):
//  * lifecycle         — shutdown ⇒ ServiceStopped; unknown client/handle ⇒
//                        ClientError;
//  * per-client cap    — client in-flight == max_inflight_per_client ⇒
//                        ServiceBusy;
//  * per-client quota  — admitted bytes + this request's payload would pass
//                        max_inflight_bytes_per_client ⇒ ServiceBusy;
//  * queue high-water  — pending == max_queue_depth ⇒ shed the newest queued
//                        request of a class BELOW the incoming priority
//                        (its future gets ServiceOverloaded) or, when
//                        nothing lower is queued, reject the submit with
//                        ServiceOverloaded carrying a retry-after hint.
// A rejected submit has NO effect: nothing enqueued, no slot or bytes held,
// the caller retries later (ServiceOverloaded says how long). shutdown()
// drains gracefully — everything admitted settles its future — then joins
// dispatchers and sweeper.
//
// Request lifecycle: every admitted request carries a RequestId, a Priority,
// an optional Deadline, and a live CancellationToken. cancel(id) settles a
// QUEUED request with RequestCancelled immediately and signals a RUNNING one
// cooperatively (the token is threaded into the BatchScheduler fan-out, so
// it stops between chunks). The sweeper expires queued requests whose
// deadline passed (DeadlineExceeded) even while paused; dispatch re-checks
// the deadline so a late request never starts. EVERY admitted future is
// fulfilled exactly once — completed, failed, cancelled, expired, or shed —
// and its slot and bytes are released before the future becomes ready.
//
// Determinism: request RESULTS are bit-identical for any workers/dispatchers
// count (the scheduler merges in chunk-id order), and an uncancelled request
// is bit-identical to one submitted without a token. Request COMPLETION
// ORDER is not deterministic with >1 dispatcher — responses are matched to
// requests by future, never by order.
//
// Telemetry: always-on embedded instruments back stats() exactly; while
// obs::enabled(), the process registry additionally carries the "service.*"
// catalogue (accepted/rejected/completed/cancelled/expired/shed counters,
// queue-depth / in-flight / in-flight-byte gauges, per-class queue-age
// gauges "service.queue_age.<priority>_ns", and per-request-class queue-wait
// + service-latency histograms).
//
// Full reference: docs/service_api.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/thread_pool.hpp"
#include "service/client_registry.hpp"
#include "service/request_queue.hpp"
#include "service/service_types.hpp"

namespace ohd::service {

/// What cancel(RequestId) observed and did.
enum class CancelResult : std::uint8_t {
  /// The request was still queued: removed, its future now holds
  /// RequestCancelled, its slot and bytes are released.
  Cancelled = 0,
  /// The request is executing: its token is signalled and the body stops at
  /// the next chunk boundary (future gets RequestCancelled shortly).
  Signalled = 1,
  /// Unknown id, or the request already settled — a harmless no-op.
  NotFound = 2,
};

class CompressionService {
 public:
  /// Starts the pool, dispatcher threads, and the deadline sweeper
  /// immediately. The config is normalized (dispatchers/max_queue_depth/caps
  /// floored at 1) and fixed for the service's lifetime.
  explicit CompressionService(ServiceConfig config = {});
  /// shutdown(): drains admitted requests, then joins.
  ~CompressionService();

  CompressionService(const CompressionService&) = delete;
  CompressionService& operator=(const CompressionService&) = delete;

  // ---- client lifecycle ----------------------------------------------

  /// Registers a client with its negotiated options; returns its stable id.
  /// Throws ServiceStopped after shutdown.
  ClientId open_client(ClientOptions options = {});

  /// Unregisters a client. In-flight requests of the client finish normally
  /// (they share the context); subsequent submits throw ClientError. A
  /// second close of the same id throws ClientError.
  void close_client(ClientId id);

  /// Opens `source` as an ArchiveReader owned by client `id`, evicting the
  /// client's least-recently-used readers beyond max_open_readers_per_client.
  /// Runs synchronously on the calling thread (footer+index read); throws
  /// ContainerError/ArchiveError on malformed archives, ClientError on
  /// unknown clients.
  ArchiveHandle open_archive(ClientId id,
                             std::shared_ptr<const pipeline::ByteSource> source);

  /// Closes a reader handle explicitly. Throws ClientError if the handle is
  /// not open (never opened, closed, or LRU-evicted).
  void close_archive(ClientId id, ArchiveHandle handle);

  // ---- typed requests (Submission = RequestId + future) ---------------
  //
  // All submit_* methods: resolve the client (and handle) synchronously —
  // ClientError surfaces on the calling thread — then run admission and
  // enqueue. ServiceBusy/ServiceOverloaded/ServiceStopped also throw
  // synchronously; every ADMITTED request's future becomes ready exactly
  // once (value, the request's own exception, or a lifecycle verdict:
  // RequestCancelled / DeadlineExceeded / ServiceOverloaded when shed).

  /// Compresses `job` under the client's negotiated options into a complete
  /// v3 archive image (byte-identical for any worker count).
  Submission<CompressResult> submit_compress(ClientId id, CompressJob job,
                                             RequestOptions opts = {});

  /// Decompresses every field of an open archive (streamed, chunk-parallel).
  Submission<pipeline::BatchDecompressResult> submit_decompress(
      ClientId id, ArchiveHandle archive, RequestOptions opts = {});

  /// Random access: decodes exactly one chunk of one field (only that
  /// chunk's frame is fetched) and returns its floats.
  Submission<std::vector<float>> submit_chunk(ClientId id,
                                              ArchiveHandle archive,
                                              std::size_t field,
                                              std::size_t chunk,
                                              RequestOptions opts = {});

  /// Decodes the element range [elem_begin, elem_end) of a field via the
  /// prefetching parallel range decode.
  Submission<std::vector<float>> submit_range(ClientId id,
                                              ArchiveHandle archive,
                                              std::size_t field,
                                              std::uint64_t elem_begin,
                                              std::uint64_t elem_end,
                                              RequestOptions opts = {});

  // ---- request lifecycle ----------------------------------------------

  /// Cancels one admitted request by id: a queued request settles with
  /// RequestCancelled on the calling thread; a running one is signalled
  /// cooperatively. Unknown/settled ids are a harmless no-op (NotFound).
  /// Safe to call from any thread, any number of times.
  CancelResult cancel(RequestId id);

  // ---- flow control ---------------------------------------------------

  /// Stops dispatchers from picking up NEW requests (running ones finish).
  /// Admission still runs, so the queue fills to its high-water mark — this
  /// is the deterministic-backpressure valve the queue-full tests and the
  /// soak harness use. The deadline sweeper keeps running while paused.
  /// shutdown() implicitly resumes.
  void pause();
  void resume();

  /// Graceful drain: no new admissions (submits throw ServiceStopped), every
  /// already-admitted request settles, dispatchers + sweeper join.
  /// Idempotent.
  void shutdown();
  bool stopped() const;

  // ---- introspection ---------------------------------------------------

  /// Exact always-on accounting (independent of the telemetry flag).
  ServiceStats stats() const;

  /// Attaches the network front end's error-frame accounting to stats():
  /// `fn` must return the server's LIFETIME error-frame total (live
  /// connections plus counts harvested exactly once at connection close —
  /// the io_retries discipline, so the total never decreases). nullptr
  /// detaches; net::ServiceServer attaches in its constructor and detaches
  /// in its destructor.
  void set_net_error_frames_source(std::function<std::uint64_t()> fn);
  std::size_t queue_depth() const;
  const ServiceConfig& config() const { return config_; }
  /// The shared pool, exposed for tests pinning residency ceilings.
  pipeline::ThreadPool& pool() { return pool_; }

 private:
  /// Service-side envelope of one admitted request, shared between the
  /// packaged task body, the live_ map, and cancel(). The shed verdict is
  /// written under mutex_ before its flag is released; the body reads the
  /// flag with acquire so message/hint are visible without the lock.
  struct RequestState {
    RequestId id = 0;
    Priority priority = Priority::Batch;
    std::uint64_t deadline_ns = 0;  // 0 = none
    std::size_t bytes = 0;          // admitted against the client quota
    CancellationToken cancel;       // always live (make()d when caller's inert)
    std::shared_ptr<ClientContext> client;
    std::atomic<bool> shed{false};
    std::uint64_t shed_retry_after_ns = 0;
    std::string shed_message;
  };

  /// Builds the shared envelope of one submit: scheduling options resolved,
  /// the token made live when the caller's is inert, bytes priced.
  static std::shared_ptr<RequestState> make_state(
      std::shared_ptr<ClientContext> client, const RequestOptions& opts,
      std::size_t bytes);

  /// Admission control + enqueue (throws ServiceStopped/ServiceBusy/
  /// ServiceOverloaded; on throw nothing is enqueued and nothing is held).
  /// Assigns state->id, registers it in live_, and — when admission had to
  /// shed a lower-priority victim — settles the victim's future on this
  /// thread after dropping the lock. Returns the new request's id.
  RequestId admit(RequestClass cls, std::shared_ptr<RequestState> state,
                  std::function<void()> run);
  void dispatcher_loop();
  /// Expires queued past-deadline requests every config_.sweep_interval and
  /// refreshes the per-class queue-age gauges; runs while paused.
  void sweeper_loop();

  /// The verdict gate at the top of every request body: throws
  /// ServiceOverloaded (shed), RequestCancelled, or DeadlineExceeded.
  void throw_verdict(const RequestState& state) const;

  /// Runs a request body, classifying the outcome into exactly one of
  /// completed/failed/cancelled/expired/shed and releasing the client's
  /// slot + bytes and the live_ entry before the surrounding packaged_task
  /// fulfills the future (so stats() observed after a .get() is exact).
  template <typename Fn>
  auto run_counted(RequestState& state, Fn&& fn) -> decltype(fn());

  CompressResult run_compress(const ClientContext& client,
                              const CompressJob& job,
                              const CancellationToken& cancel) const;

  /// queue depth x EWMA inter-pop time: the retry-after hint (0 until the
  /// dispatchers have popped at least twice). Requires mutex_.
  std::uint64_t retry_after_ns_locked() const;

  ServiceConfig config_;
  ClientRegistry clients_;
  pipeline::ThreadPool pool_;
  pipeline::BatchScheduler scheduler_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable sweep_wake_;
  PriorityRequestQueue queue_;
  std::unordered_map<RequestId, std::shared_ptr<RequestState>> live_;
  RequestId next_request_id_ = 1;
  bool stopping_ = false;
  bool paused_ = false;
  /// Observed queue drain rate: EWMA of dispatcher inter-pop times (ns).
  double drain_ewma_ns_ = 0.0;
  std::uint64_t last_pop_ns_ = 0;

  /// Attached network front end's lifetime error-frame total (its own lock
  /// because stats() deliberately avoids mutex_).
  mutable std::mutex net_stats_mutex_;
  std::function<std::uint64_t()> net_error_frames_fn_;

  /// Always-on embedded instruments behind stats(); the registry mirrors
  /// them under "service.*" while obs::enabled().
  obs::Counter accepted_;
  obs::Counter rejected_busy_;
  obs::Counter rejected_client_cap_;
  obs::Counter rejected_quota_;
  obs::Counter completed_;
  obs::Counter failed_;
  obs::Counter cancelled_;
  obs::Counter expired_;
  obs::Counter shed_;
  obs::Counter readers_evicted_;
  obs::Gauge queue_depth_gauge_;
  obs::Gauge inflight_gauge_;
  obs::Gauge inflight_bytes_gauge_;

  /// Started last in the constructor; joined by shutdown().
  std::vector<std::thread> dispatchers_;
  std::thread sweeper_;
};

}  // namespace ohd::service
