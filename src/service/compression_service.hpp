// CompressionService: the persistent front end of the archive stack. One
// service owns the ThreadPool and multiplexes any number of concurrent
// clients over it through a bounded request queue:
//
//   client threads ──submit_*()──▶ [bounded FIFO queue] ──▶ dispatcher
//   (futures back)                  admission control        threads ──▶
//                                                            BatchScheduler
//                                                            on the shared
//                                                            ThreadPool
//
// Dispatcher threads are deliberately separate from pool workers: a request
// EXECUTES by fanning its chunk tasks onto the pool and blocking on their
// futures, so running requests on the pool itself would deadlock the moment
// every worker blocked waiting for chunk tasks that no worker is free to
// run. `dispatchers` is therefore the request-level concurrency and
// `workers` the chunk-level parallelism each request taps.
//
// Admission control (all enforced at submit, before anything is enqueued):
//  * queue high-water  — pending requests == max_queue_depth ⇒ ServiceBusy;
//  * per-client cap    — client in-flight == max_inflight_per_client ⇒
//                        ServiceBusy;
//  * lifecycle         — shutdown ⇒ ServiceStopped; unknown client/handle ⇒
//                        ClientError.
// A rejected submit has NO effect: nothing enqueued, no slot consumed, the
// caller retries later. shutdown() drains gracefully — everything already
// admitted completes, its futures all become ready — then joins the
// dispatchers.
//
// Determinism: request RESULTS are bit-identical for any workers/dispatchers
// count (the scheduler merges in chunk-id order). Request COMPLETION ORDER
// is not deterministic with >1 dispatcher — responses are matched to
// requests by future, never by order.
//
// Telemetry: always-on embedded instruments back stats() exactly; while
// obs::enabled(), the process registry additionally carries the "service.*"
// catalogue (accepted/rejected/completed counters, queue-depth and in-flight
// gauges, and per-request-class queue-wait + service-latency histograms
// "service.<class>.queue_wait_ns" / "service.<class>.latency_ns").
//
// Full reference: docs/service_api.md.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/batch.hpp"
#include "pipeline/byte_stream.hpp"
#include "pipeline/thread_pool.hpp"
#include "service/client_registry.hpp"
#include "service/service_types.hpp"

namespace ohd::service {

class CompressionService {
 public:
  /// Starts the pool and dispatcher threads immediately. The config is
  /// normalized (dispatchers/max_queue_depth/caps floored at 1) and fixed
  /// for the service's lifetime.
  explicit CompressionService(ServiceConfig config = {});
  /// shutdown(): drains admitted requests, then joins.
  ~CompressionService();

  CompressionService(const CompressionService&) = delete;
  CompressionService& operator=(const CompressionService&) = delete;

  // ---- client lifecycle ----------------------------------------------

  /// Registers a client with its negotiated options; returns its stable id.
  /// Throws ServiceStopped after shutdown.
  ClientId open_client(ClientOptions options = {});

  /// Unregisters a client. In-flight requests of the client finish normally
  /// (they share the context); subsequent submits throw ClientError. A
  /// second close of the same id throws ClientError.
  void close_client(ClientId id);

  /// Opens `source` as an ArchiveReader owned by client `id`, evicting the
  /// client's least-recently-used readers beyond max_open_readers_per_client.
  /// Runs synchronously on the calling thread (footer+index read); throws
  /// ContainerError/ArchiveError on malformed archives, ClientError on
  /// unknown clients.
  ArchiveHandle open_archive(ClientId id,
                             std::shared_ptr<const pipeline::ByteSource> source);

  /// Closes a reader handle explicitly. Throws ClientError if the handle is
  /// not open (never opened, closed, or LRU-evicted).
  void close_archive(ClientId id, ArchiveHandle handle);

  // ---- typed requests (futures) --------------------------------------
  //
  // All submit_* methods: resolve the client (and handle) synchronously —
  // ClientError surfaces on the calling thread — then run admission and
  // enqueue. ServiceBusy/ServiceStopped also throw synchronously; every
  // ADMITTED request's future becomes ready exactly once (value or the
  // request's own exception).

  /// Compresses `job` under the client's negotiated options into a complete
  /// v3 archive image (byte-identical for any worker count).
  std::future<CompressResult> submit_compress(ClientId id, CompressJob job);

  /// Decompresses every field of an open archive (streamed, chunk-parallel).
  std::future<pipeline::BatchDecompressResult> submit_decompress(
      ClientId id, ArchiveHandle archive);

  /// Random access: decodes exactly one chunk of one field (only that
  /// chunk's frame is fetched) and returns its floats.
  std::future<std::vector<float>> submit_chunk(ClientId id,
                                               ArchiveHandle archive,
                                               std::size_t field,
                                               std::size_t chunk);

  /// Decodes the element range [elem_begin, elem_end) of a field via the
  /// prefetching parallel range decode.
  std::future<std::vector<float>> submit_range(ClientId id,
                                               ArchiveHandle archive,
                                               std::size_t field,
                                               std::uint64_t elem_begin,
                                               std::uint64_t elem_end);

  // ---- flow control ---------------------------------------------------

  /// Stops dispatchers from picking up NEW requests (running ones finish).
  /// Admission still runs, so the queue fills to its high-water mark — this
  /// is the deterministic-backpressure valve the queue-full tests and the
  /// soak harness use. shutdown() implicitly resumes.
  void pause();
  void resume();

  /// Graceful drain: no new admissions (submits throw ServiceStopped), every
  /// already-admitted request completes, dispatchers join. Idempotent.
  void shutdown();
  bool stopped() const;

  // ---- introspection ---------------------------------------------------

  /// Exact always-on accounting (independent of the telemetry flag).
  ServiceStats stats() const;
  std::size_t queue_depth() const;
  const ServiceConfig& config() const { return config_; }
  /// The shared pool, exposed for tests pinning residency ceilings.
  pipeline::ThreadPool& pool() { return pool_; }

 private:
  struct Request {
    RequestClass cls = RequestClass::Compress;
    std::shared_ptr<ClientContext> client;
    std::function<void()> run;
    /// now_ns() at admission when telemetry was enabled, else 0 — the
    /// queue-wait histogram sample is keyed off this recorded state, not a
    /// re-read of the flag, so a mid-flight flip cannot skew the histogram.
    std::uint64_t enqueue_ns = 0;
  };

  /// Admission control + enqueue (throws ServiceStopped/ServiceBusy; on
  /// throw nothing is enqueued and no slot is held).
  void admit(RequestClass cls, std::shared_ptr<ClientContext> client,
             std::function<void()> run);
  void dispatcher_loop();

  /// Runs a request body, counting completed/failed and releasing the
  /// client's in-flight slot before the surrounding packaged_task fulfills
  /// the future (so stats() observed after a .get() is exact).
  template <typename Fn>
  auto run_counted(ClientContext& client, Fn&& fn) -> decltype(fn());

  CompressResult run_compress(const ClientContext& client,
                              const CompressJob& job) const;

  ServiceConfig config_;
  ClientRegistry clients_;
  pipeline::ThreadPool pool_;
  pipeline::BatchScheduler scheduler_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  bool paused_ = false;

  /// Always-on embedded instruments behind stats(); the registry mirrors
  /// them under "service.*" while obs::enabled().
  obs::Counter accepted_;
  obs::Counter rejected_busy_;
  obs::Counter rejected_client_cap_;
  obs::Counter completed_;
  obs::Counter failed_;
  obs::Counter readers_evicted_;
  obs::Gauge queue_depth_gauge_;
  obs::Gauge inflight_gauge_;

  /// Started last in the constructor; joined by shutdown().
  std::vector<std::thread> dispatchers_;
};

}  // namespace ohd::service
