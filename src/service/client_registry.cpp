#include "service/client_registry.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace ohd::service {

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::Interactive:
      return "interactive";
    case Priority::Batch:
      return "batch";
    case Priority::Background:
      return "background";
  }
  return "unknown";
}

Deadline Deadline::after(std::chrono::nanoseconds d) {
  // Clamp to "at least 1ns from the epoch": ns == 0 is the "none" sentinel
  // and must never be produced by a real deadline request.
  const std::int64_t now = static_cast<std::int64_t>(obs::now_ns());
  const std::int64_t at = now + d.count();
  return Deadline{at > 0 ? static_cast<std::uint64_t>(at) : 1};
}

const char* request_class_name(RequestClass cls) {
  switch (cls) {
    case RequestClass::Compress:
      return "compress";
    case RequestClass::BatchDecompress:
      return "decompress";
    case RequestClass::RandomAccessChunk:
      return "chunk";
    case RequestClass::RangeDecode:
      return "range";
  }
  return "unknown";
}

ArchiveHandle ClientContext::open_reader(
    std::shared_ptr<const pipeline::ByteSource> source,
    const pipeline::ReaderOptions& options, std::size_t cap,
    std::uint64_t* evicted) {
  if (!source) {
    throw ClientError("open_archive: null byte source");
  }
  // Construct the entry before touching the registry: a malformed archive
  // throws out of the ArchiveReader constructor and must leave the client's
  // handle table (and LRU) exactly as it was.
  auto entry = std::make_shared<ReaderEntry>(std::move(source), options);

  std::lock_guard<std::mutex> lock(mutex_);
  if (cap == 0) {
    throw ClientError("open_archive: reader cap is zero");
  }
  while (readers_.size() >= cap) {
    const ArchiveHandle victim = lru_.back();
    lru_.pop_back();
    const auto it = readers_.find(victim);
    // Harvest the victim's retry total before the registry drops its
    // reference — io_retries() stays a lifetime figure across evictions.
    retired_io_retries_ += it->second.entry->reader.io_retries();
    readers_.erase(it);
    if (evicted != nullptr) {
      ++*evicted;
    }
  }
  const ArchiveHandle handle = next_handle_++;
  lru_.push_front(handle);
  readers_.emplace(handle, Slot{lru_.begin(), std::move(entry)});
  return handle;
}

std::shared_ptr<ReaderEntry> ClientContext::reader(ArchiveHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = readers_.find(handle);
  if (it == readers_.end()) {
    throw ClientError("unknown archive handle " + std::to_string(handle) +
                      " for client " + std::to_string(id_) +
                      " (closed or evicted?)");
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.entry;
}

void ClientContext::close_reader(ArchiveHandle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = readers_.find(handle);
  if (it == readers_.end()) {
    throw ClientError("close_archive: unknown handle " +
                      std::to_string(handle) + " for client " +
                      std::to_string(id_));
  }
  lru_.erase(it->second.lru_pos);
  retired_io_retries_ += it->second.entry->reader.io_retries();
  readers_.erase(it);
}

std::uint64_t ClientContext::io_retries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = retired_io_retries_;
  for (const auto& [handle, slot] : readers_) {
    (void)handle;
    total += slot.entry->reader.io_retries();
  }
  return total;
}

std::size_t ClientContext::open_reader_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return readers_.size();
}

bool ClientContext::try_acquire_slot(std::size_t cap) {
  std::uint64_t cur = inflight_.load(std::memory_order_relaxed);
  while (cur < cap) {
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void ClientContext::release_slot() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

bool ClientContext::try_acquire_bytes(std::size_t bytes, std::size_t quota) {
  if (bytes == 0) return true;
  std::uint64_t cur = inflight_bytes_.load(std::memory_order_relaxed);
  while (cur + bytes <= quota) {
    if (inflight_bytes_.compare_exchange_weak(cur, cur + bytes,
                                              std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void ClientContext::release_bytes(std::size_t bytes) {
  if (bytes != 0) {
    inflight_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

std::shared_ptr<ClientContext> ClientRegistry::open(ClientOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ClientId id = next_id_++;
  auto ctx = std::make_shared<ClientContext>(id, std::move(options));
  clients_.emplace(id, ctx);
  return ctx;
}

std::shared_ptr<ClientContext> ClientRegistry::find(ClientId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = clients_.find(id);
  if (it == clients_.end()) {
    throw ClientError("unknown client " + std::to_string(id) +
                      " (never opened, or already closed)");
  }
  return it->second;
}

std::shared_ptr<ClientContext> ClientRegistry::close(ClientId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = clients_.find(id);
  if (it == clients_.end()) {
    throw ClientError("close_client: unknown client " + std::to_string(id) +
                      " (double close?)");
  }
  auto ctx = std::move(it->second);
  clients_.erase(it);
  // Fold the departing client's lifetime retry total into the registry's
  // retired counter so io_retries() never decreases across close_client.
  retired_io_retries_ += ctx->io_retries();
  return ctx;
}

std::size_t ClientRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clients_.size();
}

std::size_t ClientRegistry::open_readers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [id, ctx] : clients_) {
    (void)id;
    total += ctx->open_reader_count();
  }
  return total;
}

std::uint64_t ClientRegistry::io_retries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = retired_io_retries_;
  for (const auto& [id, ctx] : clients_) {
    (void)id;
    total += ctx->io_retries();
  }
  return total;
}

}  // namespace ohd::service
