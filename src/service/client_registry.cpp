#include "service/client_registry.hpp"

#include <string>
#include <utility>

namespace ohd::service {

const char* request_class_name(RequestClass cls) {
  switch (cls) {
    case RequestClass::Compress:
      return "compress";
    case RequestClass::BatchDecompress:
      return "decompress";
    case RequestClass::RandomAccessChunk:
      return "chunk";
    case RequestClass::RangeDecode:
      return "range";
  }
  return "unknown";
}

ArchiveHandle ClientContext::open_reader(
    std::shared_ptr<const pipeline::ByteSource> source,
    const pipeline::ReaderOptions& options, std::size_t cap,
    std::uint64_t* evicted) {
  if (!source) {
    throw ClientError("open_archive: null byte source");
  }
  // Construct the entry before touching the registry: a malformed archive
  // throws out of the ArchiveReader constructor and must leave the client's
  // handle table (and LRU) exactly as it was.
  auto entry = std::make_shared<ReaderEntry>(std::move(source), options);

  std::lock_guard<std::mutex> lock(mutex_);
  if (cap == 0) {
    throw ClientError("open_archive: reader cap is zero");
  }
  while (readers_.size() >= cap) {
    const ArchiveHandle victim = lru_.back();
    lru_.pop_back();
    readers_.erase(victim);
    if (evicted != nullptr) {
      ++*evicted;
    }
  }
  const ArchiveHandle handle = next_handle_++;
  lru_.push_front(handle);
  readers_.emplace(handle, Slot{lru_.begin(), std::move(entry)});
  return handle;
}

std::shared_ptr<ReaderEntry> ClientContext::reader(ArchiveHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = readers_.find(handle);
  if (it == readers_.end()) {
    throw ClientError("unknown archive handle " + std::to_string(handle) +
                      " for client " + std::to_string(id_) +
                      " (closed or evicted?)");
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.entry;
}

void ClientContext::close_reader(ArchiveHandle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = readers_.find(handle);
  if (it == readers_.end()) {
    throw ClientError("close_archive: unknown handle " +
                      std::to_string(handle) + " for client " +
                      std::to_string(id_));
  }
  lru_.erase(it->second.lru_pos);
  readers_.erase(it);
}

std::size_t ClientContext::open_reader_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return readers_.size();
}

bool ClientContext::try_acquire_slot(std::size_t cap) {
  std::uint64_t cur = inflight_.load(std::memory_order_relaxed);
  while (cur < cap) {
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void ClientContext::release_slot() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

std::shared_ptr<ClientContext> ClientRegistry::open(ClientOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ClientId id = next_id_++;
  auto ctx = std::make_shared<ClientContext>(id, std::move(options));
  clients_.emplace(id, ctx);
  return ctx;
}

std::shared_ptr<ClientContext> ClientRegistry::find(ClientId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = clients_.find(id);
  if (it == clients_.end()) {
    throw ClientError("unknown client " + std::to_string(id) +
                      " (never opened, or already closed)");
  }
  return it->second;
}

std::shared_ptr<ClientContext> ClientRegistry::close(ClientId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = clients_.find(id);
  if (it == clients_.end()) {
    throw ClientError("close_client: unknown client " + std::to_string(id) +
                      " (double close?)");
  }
  auto ctx = std::move(it->second);
  clients_.erase(it);
  return ctx;
}

std::size_t ClientRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clients_.size();
}

std::size_t ClientRegistry::open_readers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [id, ctx] : clients_) {
    (void)id;
    total += ctx->open_reader_count();
  }
  return total;
}

}  // namespace ohd::service
