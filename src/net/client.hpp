// ServiceClient: the wire mirror of the CompressionService submit API. One
// client owns one connection to a ServiceServer endpoint, negotiates its
// session (OpenClient) at connect time, and multiplexes any number of
// in-flight requests over it: each submit_* assigns a wire request id,
// registers a promise, sends one Request frame, and returns a Submission
// whose future is settled by the DEMUX READER thread when the matching
// Response/Error frame arrives — responses stream back in completion order,
// so a fast chunk read overtakes a slow batch decompress exactly as it does
// in-process.
//
// Failure mapping: typed error frames are reconstructed into the local
// service:: exception types (ServiceOverloaded keeps its retry_after_ns
// hint); wire conditions with no local type surface as RemoteError with the
// pinned code. Losing the connection settles every in-flight future with
// ConnectionLost.
//
// Reconnect + retry: the *_retrying blocking helpers wrap submit+wait in the
// reusable backoff loop — reconnect on ConnectionLost, resubmit on
// ServiceBusy, and for ServiceOverloaded wait at least the server's
// retry_after_ns hint (never less; the seeded-jitter RetryPolicy schedule is
// the floor). The sleep is injectable (ClientConfig::sleep_fn), which is how
// the retry-after test pins the waited interval deterministically. Archive
// handles are CONNECTION-SCOPED: a reconnect starts a fresh session and old
// handles are gone, so the helpers only auto-reconnect for handle-free
// compress work; handle-holding callers observe ConnectionLost and re-open.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "pipeline/byte_stream.hpp"
#include "service/service_types.hpp"

namespace ohd::net {

struct ClientConfig {
  Endpoint endpoint;
  /// Wire-negotiated session options (the OpenClient body); the server fills
  /// the rest of ClientOptions from its own defaults.
  double rel_error_bound = 1e-3;
  std::uint32_t radius = 512;
  std::uint64_t chunk_elems = std::uint64_t{1} << 16;
  /// Per-frame payload ceiling applied to INCOMING frames.
  std::uint64_t max_frame_payload = kDefaultMaxPayload;
  /// Reconnect/retry schedule of the *_retrying helpers and connect():
  /// seeded-jitter exponential backoff, deterministic per (seed, attempt).
  pipeline::RetryPolicy retry{.max_attempts = 5,
                              .base_delay = std::chrono::microseconds(2000),
                              .backoff_multiplier = 2.0,
                              .jitter = 0.1};
  /// Injectable backoff sleep (tests record it instead of sleeping); null =
  /// std::this_thread::sleep_for.
  std::function<void(std::chrono::nanoseconds)> sleep_fn;
};

/// Always-on accounting snapshot of one client.
struct ClientStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t errors_received = 0;   // typed error frames demuxed
  std::uint64_t reconnects = 0;        // successful connects after the first
  std::uint64_t retries = 0;           // *_retrying re-attempts
  std::uint64_t retry_after_waits = 0; // backoffs that honored a server hint
};

class ServiceClient {
 public:
  /// Connects and negotiates the session immediately; throws NetError /
  /// ConnectionLost when the endpoint cannot be reached within the retry
  /// budget.
  explicit ServiceClient(ClientConfig config);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  bool connected() const;
  /// (Re)establishes the connection + session if currently disconnected,
  /// within the retry budget. In-flight futures of the old connection have
  /// already settled with ConnectionLost. Counts a reconnect.
  void reconnect();
  /// Closes the connection (in-flight futures settle with ConnectionLost).
  void disconnect();

  // ---- session-scoped sync calls ---------------------------------------

  /// Uploads an archive image; returns the connection-scoped handle.
  service::ArchiveHandle open_archive(std::span<const std::uint8_t> image);
  void close_archive(service::ArchiveHandle handle);
  /// Liveness round trip.
  void ping();

  // ---- submit mirror (Submission.id is the WIRE id; cancel() takes it) --

  service::Submission<service::CompressResult> submit_compress(
      service::CompressJob job, service::RequestOptions opts = {});
  service::Submission<DecompressBody> submit_decompress(
      service::ArchiveHandle archive, service::RequestOptions opts = {});
  service::Submission<std::vector<float>> submit_chunk(
      service::ArchiveHandle archive, std::size_t field, std::size_t chunk,
      service::RequestOptions opts = {});
  service::Submission<std::vector<float>> submit_range(
      service::ArchiveHandle archive, std::size_t field,
      std::uint64_t elem_begin, std::uint64_t elem_end,
      service::RequestOptions opts = {});

  /// Sends a Cancel frame for an in-flight wire id (best effort, fire and
  /// forget — the request's future settles with whatever the server decides:
  /// RequestCancelled when the cancel won, the result when it lost the race).
  void cancel(std::uint64_t wire_id);

  // ---- blocking helpers with the reconnect/backoff loop ----------------

  /// submit_compress + get, retrying on ServiceBusy/ServiceOverloaded (the
  /// latter waits >= the server's retry_after_ns hint) and reconnecting on
  /// ConnectionLost, within config.retry.max_attempts.
  service::CompressResult compress_retrying(const service::CompressJob& job,
                                            service::RequestOptions opts = {});
  /// submit_decompress + get with the same backoff loop; no auto-reconnect
  /// (the handle would be dead) — ConnectionLost propagates.
  DecompressBody decompress_retrying(service::ArchiveHandle archive,
                                     service::RequestOptions opts = {});

  ClientStats stats() const;

 private:
  struct PendingRequest {
    RequestOp op = RequestOp::OpenClient;
    /// Parses the response payload and settles the promise (or captures the
    /// parse failure into it). Runs on the demux reader thread.
    std::function<void(std::span<const std::uint8_t>)> settle_value;
    std::function<void(std::exception_ptr)> settle_error;
  };

  void connect_locked(std::unique_lock<std::mutex>& lock);
  void teardown_locked(std::unique_lock<std::mutex>& lock,
                       const std::string& reason);
  void reader_loop(std::uint64_t generation, int fd);

  std::uint64_t send_request(RequestOp op, const service::RequestOptions& opts,
                             std::span<const std::uint8_t> payload,
                             PendingRequest pending);
  /// Round trip for the sync ops: send_request + wait on an internal future.
  std::vector<std::uint8_t> call(RequestOp op,
                                 std::span<const std::uint8_t> payload);
  void sleep_backoff(std::chrono::nanoseconds d);

  ClientConfig config_;

  /// Serializes whole connect attempts (connect_locked drops mutex_ to join
  /// the previous reader; racing reconnects must not both proceed). Always
  /// acquired BEFORE mutex_, never the other way.
  std::mutex connect_mutex_;
  mutable std::mutex mutex_;  // connection state + pending map + counters
  std::unique_ptr<Socket> sock_;
  std::unique_ptr<pipeline::FdSink> sink_;  // under write_mutex_
  std::mutex write_mutex_;
  std::thread reader_;
  std::thread dead_reader_;  // previous generation, joined on next transition
  bool connected_ = false;
  bool ever_connected_ = false;
  bool closing_ = false;
  std::uint64_t generation_ = 0;  // bumps every (dis)connect; stale readers exit
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, PendingRequest> pending_;

  std::uint64_t requests_sent_ = 0;
  std::uint64_t responses_received_ = 0;
  std::uint64_t errors_received_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t retry_after_waits_ = 0;
};

}  // namespace ohd::net
