// ServiceServer: the network edge of the CompressionService. Owns one or
// more listening sockets (TCP loopback and/or Unix domain), accepts
// connections on an acceptor thread per listener, and runs two threads per
// connection:
//
//   acceptor ──▶ Connection
//                 reader thread:   recv frame ─▶ parse/validate ─▶
//                                  sync ops (open/close client/archive)
//                                  answered inline; submit_* mapped onto
//                                  CompressionService with the frame
//                                  header's priority/deadline; cancel
//                                  frames routed to service.cancel()
//                 completer thread: polls the pending submissions' futures
//                                  and streams each response back the
//                                  moment it settles — COMPLETION order,
//                                  tagged by the request id the client
//                                  chose, never submission order
//
// Every failure a request can produce maps onto a typed error frame with a
// pinned wire code (net/frame.hpp WireErrorCode; docs/wire_protocol.md owns
// the table), including ServiceOverloaded's retry_after_ns hint. A
// malformed frame HEADER desynchronizes the byte stream, so the connection
// sends one id-0 BadRequest error frame and closes; a malformed request
// BODY inside a sound frame is answered with a typed error on that id and
// the connection lives on.
//
// Sessions: each connection owns at most one service client (negotiated by
// the OpenClient op) plus that client's archive handles — all
// connection-scoped. When a connection dies with requests in flight, the
// server cancels them (nobody can read the responses); graceful shutdown()
// instead drains every in-flight request, flushes its response, then closes.
//
// Telemetry: per-server always-on counters behind stats(); while
// obs::enabled() the process registry aggregates the same values under
// "net.*" (frames/bytes in+out, decode rejects, error frames, connection
// gauge). Lifetime error-frame totals are additionally harvested into the
// owning CompressionService's ServiceStats::net_error_frames (exactly-once
// per connection, the io_retries discipline).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "service/compression_service.hpp"

namespace ohd::net {

struct ServerConfig {
  /// Endpoints to listen on; empty defaults to one ephemeral TCP loopback
  /// listener (endpoints() names the bound port).
  std::vector<Endpoint> listen;
  /// Per-frame payload ceiling; frames declaring more are rejected before
  /// the payload is read or allocated.
  std::uint64_t max_frame_payload = kDefaultMaxPayload;
  /// Completer poll slice: the bound on how long a settled response can wait
  /// while the completer is blocked on a different future.
  std::chrono::microseconds completion_poll{200};
  /// Base ClientOptions of every wire session; OpenClient's negotiated
  /// fields (rel_error_bound, radius, chunk_elems) override onto this, the
  /// rest (decoder, planning, method) apply as-is.
  service::ClientOptions client_defaults;
};

/// Always-on accounting snapshot of one server.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::int64_t open_connections = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t requests_submitted = 0;  // submit_* calls that were admitted
  std::uint64_t decode_rejects = 0;      // malformed frames/bodies rejected
  std::uint64_t error_frames = 0;        // typed error frames sent (lifetime)
  std::uint64_t cancels_relayed = 0;     // cancel frames routed to cancel()
};

class ServiceServer {
 public:
  /// Binds every configured endpoint and starts accepting immediately.
  /// Throws NetError when a bind/listen fails (nothing half-started: all
  /// listeners succeed or the constructor throws). Attaches the
  /// error-frame source to `service` stats.
  ServiceServer(service::CompressionService& service, ServerConfig config);

  /// Convenience: listens where service.config() says (listen_tcp /
  /// listen_tcp_port / listen_unix_path); with neither set, one ephemeral
  /// TCP loopback listener.
  explicit ServiceServer(service::CompressionService& service);

  /// shutdown(), then detaches from the service.
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// The bound endpoints, with ephemeral TCP ports resolved.
  const std::vector<Endpoint>& endpoints() const { return endpoints_; }

  /// Graceful drain: stops accepting, half-closes every connection for
  /// reading (no new frames), waits for every in-flight request to settle
  /// and its response to flush, then closes the connections and joins all
  /// threads. Idempotent. The owning CompressionService keeps running.
  void shutdown();
  bool stopped() const;

  ServerStats stats() const;

  /// Lifetime error-frame total: live connections plus harvested closed
  /// ones — the value surfaced through ServiceStats::net_error_frames.
  std::uint64_t error_frames() const;

 private:
  struct Connection;

  void acceptor_loop(Listener& listener);
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void completer_loop(const std::shared_ptr<Connection>& conn);

  /// Handles one well-framed request frame on the reader thread; any
  /// invalid_argument from body parsing becomes a BadRequest error frame on
  /// the request's id (connection survives).
  void handle_request(Connection& conn, const FrameHeader& header,
                      std::span<const std::uint8_t> payload);

  /// Registers an admitted submission with the connection's completer:
  /// `serialize` turns the settled value into the response payload on the
  /// completer thread; failures become typed error frames on the wire id.
  template <typename T, typename SerializeFn>
  void track(Connection& conn, const FrameHeader& header,
             service::Submission<T> submission, SerializeFn serialize);

  void send_frame(Connection& conn, const FrameHeader& header,
                  std::span<const std::uint8_t> payload);
  void send_response(Connection& conn, RequestOp op, std::uint64_t request_id,
                     std::span<const std::uint8_t> payload);
  void send_error(Connection& conn, std::uint64_t request_id,
                  const ErrorBody& body);

  /// Joins and forgets connections whose threads have finished; called from
  /// accept iterations and shutdown.
  void reap_connections(bool join_all);

  service::CompressionService& service_;
  ServerConfig config_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<Listener>> listeners_;
  std::vector<std::thread> acceptors_;

  mutable std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::uint64_t retired_error_frames_ = 0;  // harvested at connection close
  bool stopping_ = false;

  // Always-on instruments behind stats(); mirrored under "net.*" while
  // obs::enabled().
  obs::Counter connections_accepted_;
  obs::Gauge open_connections_;
  obs::Counter frames_in_;
  obs::Counter frames_out_;
  obs::Counter bytes_in_;
  obs::Counter bytes_out_;
  obs::Counter requests_submitted_;
  obs::Counter decode_rejects_;
  obs::Counter cancels_relayed_;
};

}  // namespace ohd::net
