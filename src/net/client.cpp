#include "net/client.hpp"

#include <algorithm>
#include <thread>
#include <tuple>
#include <utility>

#include "net/net_metrics.hpp"
#include "obs/metrics.hpp"

namespace ohd::net {

namespace {

/// Wire budget of a request: the RequestOptions deadline is an ABSOLUTE
/// steady-clock instant, the frame carries the REMAINING budget (an already
/// expired deadline ships as 1ns, so the server still produces the
/// DeadlineExceeded verdict the caller would have seen in-process).
std::uint64_t relative_deadline_ns(const service::RequestOptions& opts) {
  if (!opts.deadline.valid()) return 0;
  const std::uint64_t now = obs::now_ns();
  return opts.deadline.ns > now ? opts.deadline.ns - now : 1;
}

}  // namespace

ServiceClient::ServiceClient(ClientConfig config) : config_(std::move(config)) {
  std::lock_guard<std::mutex> serial(connect_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  connect_locked(lock);
}

ServiceClient::~ServiceClient() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    closing_ = true;
    teardown_locked(lock, "client destroyed");
  }
  if (reader_.joinable()) reader_.join();
  if (dead_reader_.joinable()) dead_reader_.join();
}

bool ServiceClient::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connected_;
}

void ServiceClient::reconnect() {
  // connect_mutex_ serializes whole connect attempts: connect_locked drops
  // mutex_ to join the previous reader, and two racing reconnects must not
  // both slip past the connected_ check in that window.
  std::lock_guard<std::mutex> serial(connect_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  if (connected_) return;
  connect_locked(lock);
}

void ServiceClient::disconnect() {
  std::unique_lock<std::mutex> lock(mutex_);
  teardown_locked(lock, "client disconnected");
  lock.unlock();
  if (reader_.joinable()) reader_.join();
}

void ServiceClient::sleep_backoff(std::chrono::nanoseconds d) {
  if (d.count() <= 0) return;
  if (config_.sleep_fn) {
    config_.sleep_fn(d);
  } else {
    std::this_thread::sleep_for(d);
  }
}

void ServiceClient::connect_locked(std::unique_lock<std::mutex>& lock) {
  if (closing_) throw ConnectionLost("client is closing");
  // Join the previous generation's reader before reusing its slot (it has
  // already observed the teardown and exited, or is about to).
  if (reader_.joinable()) {
    lock.unlock();
    reader_.join();
    lock.lock();
  }
  if (dead_reader_.joinable()) dead_reader_.join();

  const std::size_t attempts = std::max<std::size_t>(1, config_.retry.max_attempts);
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      Socket sock = connect_to(config_.endpoint);
      const int fd = sock.fd();
      // Handshake runs synchronously on this thread — the demux reader only
      // starts once the session exists, so its state machine never sees a
      // handshake frame.
      OpenClientBody body;
      body.rel_error_bound = config_.rel_error_bound;
      body.radius = config_.radius;
      body.chunk_elems = config_.chunk_elems;
      util::ByteWriter w;
      write_open_client(w, body);
      FrameHeader h;
      h.type = FrameType::Request;
      h.op = RequestOp::OpenClient;
      h.priority = service::Priority::Interactive;
      h.request_id = next_id_++;
      send_all(fd, encode_frame(h, w.bytes()));
      std::uint8_t head[kFrameHeaderBytes];
      if (!recv_exact(fd, head)) {
        throw ConnectionLost("server closed during session handshake");
      }
      const FrameHeader rh = parse_frame_header(head, config_.max_frame_payload);
      std::vector<std::uint8_t> payload(rh.payload_len);
      if (rh.payload_len != 0 && !recv_exact(fd, payload)) {
        throw ConnectionLost("server closed during session handshake");
      }
      verify_payload(rh, payload);
      if (rh.type == FrameType::Error) {
        util::ByteReader r(payload);
        const ErrorBody err = read_error(r);
        expect_exhausted(r);
        throw_wire_error(err);
      }
      if (rh.type != FrameType::Response || rh.request_id != h.request_id ||
          rh.op != RequestOp::OpenClient) {
        throw FrameError("frame: unexpected frame during session handshake");
      }
      // Session established: install the connection and start the demux
      // reader for this generation.
      {
        std::lock_guard<std::mutex> wlock(write_mutex_);
        sink_ = std::make_unique<pipeline::FdSink>(fd, /*owns=*/false);
      }
      sock_ = std::make_unique<Socket>(std::move(sock));
      connected_ = true;
      if (ever_connected_) {
        ++reconnects_;
        if (obs::enabled()) net_metrics().reconnects.add(1);
      }
      ever_connected_ = true;
      const std::uint64_t generation = ++generation_;
      reader_ = std::thread([this, generation, fd] {
        reader_loop(generation, fd);
      });
      return;
    } catch (const FrameError&) {
      throw;  // a malformed handshake will not improve with retries
    } catch (const std::exception&) {
      if (attempt >= attempts) throw;
      sleep_backoff(config_.retry.delay_before(attempt));
    }
  }
}

void ServiceClient::teardown_locked(std::unique_lock<std::mutex>& lock,
                                    const std::string& reason) {
  if (!connected_) return;
  connected_ = false;
  ++generation_;  // stale readers recognize themselves and exit quietly
  if (sock_) sock_->shutdown_both();
  std::unordered_map<std::uint64_t, PendingRequest> orphans;
  orphans.swap(pending_);
  lock.unlock();
  const auto error =
      std::make_exception_ptr(ConnectionLost("connection lost: " + reason));
  for (auto& [id, p] : orphans) {
    p.settle_error(error);
  }
  lock.lock();
}

void ServiceClient::reader_loop(std::uint64_t generation, int fd) {
  std::string reason = "server closed the connection";
  try {
    for (;;) {
      std::uint8_t head[kFrameHeaderBytes];
      if (!recv_exact(fd, head)) break;
      const FrameHeader h = parse_frame_header(head, config_.max_frame_payload);
      std::vector<std::uint8_t> payload(h.payload_len);
      if (h.payload_len != 0 && !recv_exact(fd, payload)) {
        reason = "connection torn mid-frame";
        break;
      }
      verify_payload(h, payload);
      switch (h.type) {
        case FrameType::Response:
        case FrameType::Pong: {
          PendingRequest p;
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(mutex_);
            if (generation_ != generation) return;
            auto it = pending_.find(h.request_id);
            if (it != pending_.end()) {
              p = std::move(it->second);
              pending_.erase(it);
              found = true;
              ++responses_received_;
            }
          }
          // An id we no longer track is a response that raced a teardown or
          // a duplicate — drop it; the frame boundary was sound.
          if (found) p.settle_value(payload);
          break;
        }
        case FrameType::Error: {
          util::ByteReader r(payload);
          const ErrorBody body = read_error(r);
          expect_exhausted(r);
          std::exception_ptr error;
          try {
            throw_wire_error(body);
          } catch (...) {
            error = std::current_exception();
          }
          if (h.request_id == 0) {
            // Connection-level reject: the server is about to close on us.
            std::unique_lock<std::mutex> lock(mutex_);
            if (generation_ != generation) return;
            ++errors_received_;
            teardown_locked(lock, body.message);
            return;
          }
          PendingRequest p;
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(mutex_);
            if (generation_ != generation) return;
            auto it = pending_.find(h.request_id);
            if (it != pending_.end()) {
              p = std::move(it->second);
              pending_.erase(it);
              found = true;
              ++errors_received_;
            }
          }
          if (found) p.settle_error(error);
          break;
        }
        default:
          // Request/Cancel/Ping arriving at a client: protocol violation.
          reason = "unexpected frame type from server";
          throw FrameError("frame: unexpected frame type from server");
      }
    }
  } catch (const std::exception& e) {
    reason = e.what();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (generation_ != generation) return;  // a newer connection took over
  teardown_locked(lock, reason);
}

std::uint64_t ServiceClient::send_request(RequestOp op,
                                          const service::RequestOptions& opts,
                                          std::span<const std::uint8_t> payload,
                                          PendingRequest pending) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!connected_) throw ConnectionLost("not connected");
    id = next_id_++;
    pending_.emplace(id, std::move(pending));
    ++requests_sent_;
  }
  FrameHeader h;
  h.type = FrameType::Request;
  h.op = op;
  h.priority = opts.priority;
  h.request_id = id;
  h.deadline_ns = relative_deadline_ns(opts);
  const std::vector<std::uint8_t> frame = encode_frame(h, payload);
  try {
    std::lock_guard<std::mutex> wlock(write_mutex_);
    if (!sink_) throw ConnectionLost("not connected");
    sink_->write(frame);
  } catch (const std::exception& e) {
    std::unique_lock<std::mutex> lock(mutex_);
    pending_.erase(id);  // settle nothing for the caller; we throw instead
    teardown_locked(lock, e.what());
    throw ConnectionLost(std::string("send failed: ") + e.what());
  }
  return id;
}

std::vector<std::uint8_t> ServiceClient::call(
    RequestOp op, std::span<const std::uint8_t> payload) {
  auto promise =
      std::make_shared<std::promise<std::vector<std::uint8_t>>>();
  PendingRequest p;
  p.op = op;
  p.settle_value = [promise](std::span<const std::uint8_t> body) {
    promise->set_value(std::vector<std::uint8_t>(body.begin(), body.end()));
  };
  p.settle_error = [promise](std::exception_ptr e) {
    promise->set_exception(e);
  };
  auto future = promise->get_future();
  send_request(op, {}, payload, std::move(p));
  return future.get();
}

service::ArchiveHandle ServiceClient::open_archive(
    std::span<const std::uint8_t> image) {
  util::ByteWriter w;
  w.bytes(image);
  const std::vector<std::uint8_t> body = call(RequestOp::OpenArchive, w.bytes());
  util::ByteReader r(body);
  const std::uint64_t handle = r.u64();
  expect_exhausted(r);
  return handle;
}

void ServiceClient::close_archive(service::ArchiveHandle handle) {
  util::ByteWriter w;
  w.u64(handle);
  call(RequestOp::CloseArchive, w.bytes());
}

void ServiceClient::ping() {
  auto promise = std::make_shared<std::promise<void>>();
  PendingRequest p;
  p.op = RequestOp::OpenClient;  // unused for pings
  p.settle_value = [promise](std::span<const std::uint8_t>) {
    promise->set_value();
  };
  p.settle_error = [promise](std::exception_ptr e) {
    promise->set_exception(e);
  };
  auto future = promise->get_future();
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!connected_) throw ConnectionLost("not connected");
    id = next_id_++;
    pending_.emplace(id, std::move(p));
    ++requests_sent_;
  }
  FrameHeader h;
  h.type = FrameType::Ping;
  h.request_id = id;
  const std::vector<std::uint8_t> frame = encode_frame(h, {});
  try {
    std::lock_guard<std::mutex> wlock(write_mutex_);
    if (!sink_) throw ConnectionLost("not connected");
    sink_->write(frame);
  } catch (const std::exception& e) {
    std::unique_lock<std::mutex> lock(mutex_);
    pending_.erase(id);
    teardown_locked(lock, e.what());
    throw ConnectionLost(std::string("send failed: ") + e.what());
  }
  future.get();
}

service::Submission<service::CompressResult> ServiceClient::submit_compress(
    service::CompressJob job, service::RequestOptions opts) {
  util::ByteWriter w;
  write_compress_job(w, job);
  auto promise = std::make_shared<std::promise<service::CompressResult>>();
  PendingRequest p;
  p.op = RequestOp::Compress;
  p.settle_value = [promise](std::span<const std::uint8_t> body) {
    try {
      util::ByteReader r(body);
      service::CompressResult res;
      res.archive = r.array<std::uint8_t>();
      expect_exhausted(r);
      promise->set_value(std::move(res));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  };
  p.settle_error = [promise](std::exception_ptr e) {
    promise->set_exception(e);
  };
  auto future = promise->get_future();
  const std::uint64_t id =
      send_request(RequestOp::Compress, opts, w.bytes(), std::move(p));
  return {id, std::move(future)};
}

service::Submission<DecompressBody> ServiceClient::submit_decompress(
    service::ArchiveHandle archive, service::RequestOptions opts) {
  util::ByteWriter w;
  w.u64(archive);
  auto promise = std::make_shared<std::promise<DecompressBody>>();
  PendingRequest p;
  p.op = RequestOp::Decompress;
  p.settle_value = [promise](std::span<const std::uint8_t> body) {
    try {
      util::ByteReader r(body);
      DecompressBody res = read_decompress_result(r);
      expect_exhausted(r);
      promise->set_value(std::move(res));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  };
  p.settle_error = [promise](std::exception_ptr e) {
    promise->set_exception(e);
  };
  auto future = promise->get_future();
  const std::uint64_t id =
      send_request(RequestOp::Decompress, opts, w.bytes(), std::move(p));
  return {id, std::move(future)};
}

service::Submission<std::vector<float>> ServiceClient::submit_chunk(
    service::ArchiveHandle archive, std::size_t field, std::size_t chunk,
    service::RequestOptions opts) {
  util::ByteWriter w;
  w.u64(archive);
  w.u64(field);
  w.u64(chunk);
  auto promise = std::make_shared<std::promise<std::vector<float>>>();
  PendingRequest p;
  p.op = RequestOp::Chunk;
  p.settle_value = [promise](std::span<const std::uint8_t> body) {
    try {
      util::ByteReader r(body);
      std::vector<float> res = read_floats(r);
      expect_exhausted(r);
      promise->set_value(std::move(res));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  };
  p.settle_error = [promise](std::exception_ptr e) {
    promise->set_exception(e);
  };
  auto future = promise->get_future();
  const std::uint64_t id =
      send_request(RequestOp::Chunk, opts, w.bytes(), std::move(p));
  return {id, std::move(future)};
}

service::Submission<std::vector<float>> ServiceClient::submit_range(
    service::ArchiveHandle archive, std::size_t field,
    std::uint64_t elem_begin, std::uint64_t elem_end,
    service::RequestOptions opts) {
  util::ByteWriter w;
  w.u64(archive);
  w.u64(field);
  w.u64(elem_begin);
  w.u64(elem_end);
  auto promise = std::make_shared<std::promise<std::vector<float>>>();
  PendingRequest p;
  p.op = RequestOp::Range;
  p.settle_value = [promise](std::span<const std::uint8_t> body) {
    try {
      util::ByteReader r(body);
      std::vector<float> res = read_floats(r);
      expect_exhausted(r);
      promise->set_value(std::move(res));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  };
  p.settle_error = [promise](std::exception_ptr e) {
    promise->set_exception(e);
  };
  auto future = promise->get_future();
  const std::uint64_t id =
      send_request(RequestOp::Range, opts, w.bytes(), std::move(p));
  return {id, std::move(future)};
}

void ServiceClient::cancel(std::uint64_t wire_id) {
  FrameHeader h;
  h.type = FrameType::Cancel;
  h.request_id = wire_id;
  const std::vector<std::uint8_t> frame = encode_frame(h, {});
  try {
    std::lock_guard<std::mutex> wlock(write_mutex_);
    if (!sink_) return;  // nothing in flight to cancel either
    sink_->write(frame);
  } catch (const std::exception&) {
    // Best effort: a dead connection settles the request with
    // ConnectionLost anyway.
  }
}

service::CompressResult ServiceClient::compress_retrying(
    const service::CompressJob& job, service::RequestOptions opts) {
  const std::size_t attempts = std::max<std::size_t>(1, config_.retry.max_attempts);
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      reconnect();
      return submit_compress(job, opts).get();
    } catch (const service::ServiceOverloaded& e) {
      if (attempt >= attempts) throw;
      // Honor the server's hint: never wait LESS than retry_after_ns; the
      // policy's jittered schedule only ever lengthens the pause.
      const auto floor_delay = std::chrono::nanoseconds(
          config_.retry.delay_before(attempt));
      const auto hint = std::chrono::nanoseconds(e.retry_after_ns());
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++retries_;
        if (hint.count() > 0) ++retry_after_waits_;
      }
      sleep_backoff(std::max(hint, floor_delay));
    } catch (const service::ServiceBusy&) {
      if (attempt >= attempts) throw;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++retries_;
      }
      sleep_backoff(config_.retry.delay_before(attempt));
    } catch (const ConnectionLost&) {
      if (attempt >= attempts) throw;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++retries_;
      }
      sleep_backoff(config_.retry.delay_before(attempt));
    }
  }
}

DecompressBody ServiceClient::decompress_retrying(
    service::ArchiveHandle archive, service::RequestOptions opts) {
  const std::size_t attempts = std::max<std::size_t>(1, config_.retry.max_attempts);
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return submit_decompress(archive, opts).get();
    } catch (const service::ServiceOverloaded& e) {
      if (attempt >= attempts) throw;
      const auto floor_delay = std::chrono::nanoseconds(
          config_.retry.delay_before(attempt));
      const auto hint = std::chrono::nanoseconds(e.retry_after_ns());
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++retries_;
        if (hint.count() > 0) ++retry_after_waits_;
      }
      sleep_backoff(std::max(hint, floor_delay));
    } catch (const service::ServiceBusy&) {
      if (attempt >= attempts) throw;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++retries_;
      }
      sleep_backoff(config_.retry.delay_before(attempt));
    }
  }
}

ClientStats ServiceClient::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ClientStats s;
  s.requests_sent = requests_sent_;
  s.responses_received = responses_received_;
  s.errors_received = errors_received_;
  s.reconnects = reconnects_;
  s.retries = retries_;
  s.retry_after_waits = retry_after_waits_;
  return s;
}

}  // namespace ohd::net
