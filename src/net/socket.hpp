// POSIX socket primitives of the network subsystem: RAII descriptors, the
// two listener shapes the server binds (TCP loopback and Unix domain), the
// matching client connector, and the exact-length send/recv helpers the
// frame reader/writer loops are built on.
//
// Failure vocabulary: NetError for setup failures (bind/listen/connect, with
// errno detail), ConnectionLost (net/frame.hpp) for an established peer
// going away mid-stream. recv_exact distinguishes a CLEAN close (EOF on a
// frame boundary, returned as false) from a torn one (EOF mid-read, thrown)
// because only the former is a graceful shutdown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "net/frame.hpp"

namespace ohd::net {

/// Socket-layer setup failure (bind, listen, connect, option); the message
/// carries the errno text.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Where a server listens / a client connects. TCP is pinned to loopback by
/// design — this is a trusted-edge protocol with no authentication layer yet
/// (docs/wire_protocol.md, "Scope").
struct Endpoint {
  enum class Kind : std::uint8_t { Tcp = 0, Unix = 1 };

  Kind kind = Kind::Tcp;
  std::uint16_t tcp_port = 0;  // 0 = ephemeral (resolved after bind)
  std::string unix_path;

  static Endpoint tcp(std::uint16_t port) {
    Endpoint e;
    e.kind = Kind::Tcp;
    e.tcp_port = port;
    return e;
  }
  static Endpoint unix_socket(std::string path) {
    Endpoint e;
    e.kind = Kind::Unix;
    e.unix_path = std::move(path);
    return e;
  }

  /// "tcp:127.0.0.1:<port>" / "unix:<path>" — log/exception labels.
  std::string describe() const;
};

/// Move-only RAII descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Half-close for reading: wakes a blocked recv with EOF (the graceful
  /// server-shutdown signal — in-flight responses still flush).
  void shutdown_read();
  void shutdown_both();
  void close();

 private:
  int fd_ = -1;
};

/// Bound + listening socket. For Endpoint::tcp(0) the ephemeral port is
/// resolved at construction — endpoint() names the real one. A Unix listener
/// unlinks a stale socket file before binding and removes its own at close.
class Listener {
 public:
  explicit Listener(const Endpoint& endpoint);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  const Endpoint& endpoint() const { return endpoint_; }

  /// Blocks for the next connection. Returns an invalid Socket once close()
  /// has been called (from any thread) — the acceptor loop's exit signal.
  Socket accept();

  /// Wakes any blocked accept() and closes the listening socket. Idempotent.
  void close();

 private:
  Endpoint endpoint_;
  Socket sock_;
  bool unlink_on_close_ = false;
};

/// Connects to a listening endpoint; throws NetError on failure. TCP sockets
/// get TCP_NODELAY (frames are small and latency-bound).
Socket connect_to(const Endpoint& endpoint);

/// Sends all of `bytes` (MSG_NOSIGNAL, EINTR retried). Throws ConnectionLost
/// when the peer is gone, NetError on other failures.
void send_all(int fd, std::span<const std::uint8_t> bytes);

/// Fills `out` completely. Returns false on a clean EOF before the FIRST
/// byte (a frame-boundary close); throws ConnectionLost on EOF mid-buffer or
/// any read error. EINTR is retried.
bool recv_exact(int fd, std::span<std::uint8_t> out);

}  // namespace ohd::net
