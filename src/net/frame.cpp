#include "net/frame.hpp"

#include <cstring>
#include <limits>

#include "util/checksum.hpp"

namespace ohd::net {

namespace {

/// Caps on body-level variable-length fields. Bodies are already bounded by
/// the frame payload ceiling; these keep absurd counts from round-tripping
/// through size arithmetic before the ByteReader's remaining() check fires.
constexpr std::uint64_t kMaxStringBytes = std::uint64_t{1} << 20;
constexpr std::uint32_t kMaxFields = 1u << 16;

[[noreturn]] void reject(const std::string& what) {
  throw FrameError("frame: " + what);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const FrameHeader& header,
                                       std::span<const std::uint8_t> payload) {
  // Pin the fields the parser requires to be 0 outside their frame type, so
  // encode_frame(h, p) with any default-constructed leftovers always yields
  // a frame the strict parser accepts.
  const bool is_request = header.type == FrameType::Request;
  const bool has_op = is_request || header.type == FrameType::Response;
  util::ByteWriter w;
  w.reserve(kFrameHeaderBytes + payload.size());
  w.magic(kFrameMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(header.type));
  w.u8(has_op ? static_cast<std::uint8_t>(header.op) : 0);
  w.u8(is_request ? static_cast<std::uint8_t>(header.priority) : 0);
  w.u64(header.request_id);
  w.u64(is_request ? header.deadline_ns : 0);
  w.u64(payload.size());
  w.u32(util::crc32(payload));
  w.u32(util::crc32(w.bytes()));  // header CRC over bytes [0, 36)
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameHeader parse_frame_header(std::span<const std::uint8_t> bytes,
                               std::uint64_t max_payload) {
  if (bytes.size() < kFrameHeaderBytes) {
    reject("truncated header (" + std::to_string(bytes.size()) + " of " +
           std::to_string(kFrameHeaderBytes) + " bytes)");
  }
  const std::span<const std::uint8_t> head = bytes.first(kFrameHeaderBytes);
  if (std::memcmp(head.data(), kFrameMagic, 4) != 0) {
    reject("bad magic");
  }
  util::ByteReader r(head.subspan(4));
  const std::uint8_t version = r.u8();
  const std::uint8_t type_raw = r.u8();
  const std::uint8_t op_raw = r.u8();
  const std::uint8_t priority_raw = r.u8();
  FrameHeader h;
  h.request_id = r.u64();
  h.deadline_ns = r.u64();
  h.payload_len = r.u64();
  h.payload_crc = r.u32();
  const std::uint32_t header_crc = r.u32();
  // CRC before interpreting the fields: a flipped bit anywhere in [0, 36)
  // must be "corrupt header", not a misleading semantic error.
  if (header_crc != util::crc32(head.first(kFrameHeaderBytes - 4))) {
    reject("header CRC mismatch");
  }
  if (version != kWireVersion) {
    reject("unsupported version " + std::to_string(version));
  }
  if (type_raw > kMaxFrameType) {
    reject("unknown frame type " + std::to_string(type_raw));
  }
  h.type = static_cast<FrameType>(type_raw);
  const bool is_request = h.type == FrameType::Request;
  const bool has_op = is_request || h.type == FrameType::Response;
  if (has_op) {
    if (op_raw > kMaxRequestOp) {
      reject("unknown request op " + std::to_string(op_raw));
    }
  } else if (op_raw != 0) {
    reject("nonzero op on a non-request frame");
  }
  h.op = static_cast<RequestOp>(op_raw);
  if (is_request) {
    if (priority_raw >= service::kPriorityClasses) {
      reject("unknown priority " + std::to_string(priority_raw));
    }
  } else if (priority_raw != 0) {
    reject("nonzero priority on a non-request frame");
  }
  h.priority = static_cast<service::Priority>(priority_raw);
  if (!is_request && h.deadline_ns != 0) {
    reject("nonzero deadline on a non-request frame");
  }
  const bool needs_id = is_request || h.type == FrameType::Response ||
                        h.type == FrameType::Cancel;
  if (needs_id && h.request_id == 0) {
    reject("request id 0 on a " +
           std::to_string(static_cast<unsigned>(type_raw)) + " frame");
  }
  const bool bodyless = h.type == FrameType::Cancel ||
                        h.type == FrameType::Ping ||
                        h.type == FrameType::Pong;
  if (bodyless && h.payload_len != 0) {
    reject("payload on a bodyless frame type");
  }
  if (h.payload_len > max_payload) {
    reject("payload length " + std::to_string(h.payload_len) +
           " exceeds the " + std::to_string(max_payload) + "-byte ceiling");
  }
  return h;
}

void verify_payload(const FrameHeader& header,
                    std::span<const std::uint8_t> payload) {
  if (payload.size() != header.payload_len) {
    reject("payload size " + std::to_string(payload.size()) +
           " does not match header length " +
           std::to_string(header.payload_len));
  }
  if (util::crc32(payload) != header.payload_crc) {
    reject("payload CRC mismatch");
  }
}

Frame parse_frame(std::span<const std::uint8_t> bytes,
                  std::uint64_t max_payload) {
  Frame f;
  f.header = parse_frame_header(bytes, max_payload);
  const std::span<const std::uint8_t> rest = bytes.subspan(kFrameHeaderBytes);
  if (rest.size() != f.header.payload_len) {
    reject("frame is " + std::to_string(rest.size()) +
           " payload bytes, header declares " +
           std::to_string(f.header.payload_len));
  }
  verify_payload(f.header, rest);
  f.payload.assign(rest.begin(), rest.end());
  return f;
}

// ---- body helpers ------------------------------------------------------

void write_string(util::ByteWriter& w, const std::string& s) {
  w.u64(s.size());
  for (const char c : s) w.u8(static_cast<std::uint8_t>(c));
}

std::string read_string(util::ByteReader& r) {
  const std::uint64_t n = r.u64();
  if (n > kMaxStringBytes || n > r.remaining()) {
    reject("string length " + std::to_string(n) + " out of bounds");
  }
  std::string s(n, '\0');
  for (std::uint64_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>(r.u8());
  }
  return s;
}

void write_dims(util::ByteWriter& w, const sz::Dims& dims) {
  w.u8(static_cast<std::uint8_t>(dims.rank));
  for (const std::size_t e : dims.extent) w.u64(e);
}

sz::Dims read_dims(util::ByteReader& r) {
  sz::Dims dims;
  dims.rank = r.u8();
  if (dims.rank < 1 || dims.rank > 3) {
    reject("dims rank " + std::to_string(dims.rank) + " out of range");
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const std::uint64_t e = r.u64();
    if (e == 0 ||
        e > static_cast<std::uint64_t>(std::numeric_limits<std::size_t>::max())) {
      reject("dims extent out of range");
    }
    dims.extent[i] = static_cast<std::size_t>(e);
  }
  if (dims.count_overflows()) {
    reject("dims extent product overflows");
  }
  return dims;
}

void write_floats(util::ByteWriter& w, std::span<const float> values) {
  w.array<float>(values);
}

std::vector<float> read_floats(util::ByteReader& r) {
  return r.array<float>();
}

void write_open_client(util::ByteWriter& w, const OpenClientBody& body) {
  w.f64(body.rel_error_bound);
  w.u32(body.radius);
  w.u64(body.chunk_elems);
}

OpenClientBody read_open_client(util::ByteReader& r) {
  OpenClientBody body;
  body.rel_error_bound = r.f64();
  body.radius = r.u32();
  body.chunk_elems = r.u64();
  if (!(body.rel_error_bound > 0.0) || body.rel_error_bound > 1.0) {
    reject("open_client rel_error_bound out of (0, 1]");
  }
  if (body.radius == 0) reject("open_client radius 0");
  if (body.chunk_elems == 0) reject("open_client chunk_elems 0");
  return body;
}

void write_error(util::ByteWriter& w, const ErrorBody& body) {
  w.u16(static_cast<std::uint16_t>(body.code));
  w.u64(body.retry_after_ns);
  write_string(w, body.message);
}

ErrorBody read_error(util::ByteReader& r) {
  ErrorBody body;
  const std::uint16_t code = r.u16();
  if (code < static_cast<std::uint16_t>(WireErrorCode::Busy) ||
      code > static_cast<std::uint16_t>(WireErrorCode::Internal)) {
    reject("unknown wire error code " + std::to_string(code));
  }
  body.code = static_cast<WireErrorCode>(code);
  body.retry_after_ns = r.u64();
  body.message = read_string(r);
  return body;
}

void write_compress_job(util::ByteWriter& w, const service::CompressJob& job) {
  w.u32(static_cast<std::uint32_t>(job.fields.size()));
  for (const service::CompressField& f : job.fields) {
    write_string(w, f.name);
    write_dims(w, f.dims);
    write_floats(w, f.data);
  }
}

service::CompressJob read_compress_job(util::ByteReader& r) {
  const std::uint32_t count = r.u32();
  if (count == 0 || count > kMaxFields) {
    reject("compress field count " + std::to_string(count) + " out of range");
  }
  service::CompressJob job;
  job.fields.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    service::CompressField f;
    f.name = read_string(r);
    f.dims = read_dims(r);
    f.data = read_floats(r);
    if (f.data.size() != f.dims.count()) {
      reject("compress field '" + f.name + "' carries " +
             std::to_string(f.data.size()) + " floats for dims count " +
             std::to_string(f.dims.count()));
    }
    job.fields.push_back(std::move(f));
  }
  return job;
}

void write_decompress_result(util::ByteWriter& w, const DecompressBody& body) {
  w.u32(static_cast<std::uint32_t>(body.fields.size()));
  for (const DecompressedField& f : body.fields) {
    write_string(w, f.name);
    write_floats(w, f.data);
  }
}

DecompressBody read_decompress_result(util::ByteReader& r) {
  const std::uint32_t count = r.u32();
  if (count > kMaxFields) {
    reject("decompress field count " + std::to_string(count) +
           " out of range");
  }
  DecompressBody body;
  body.fields.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DecompressedField f;
    f.name = read_string(r);
    f.data = read_floats(r);
    body.fields.push_back(std::move(f));
  }
  return body;
}

void expect_exhausted(util::ByteReader& r) {
  if (!r.exhausted()) {
    reject(std::to_string(r.remaining()) + " trailing payload bytes");
  }
}

// ---- error taxonomy <-> wire codes ------------------------------------

ErrorBody wire_error_from_exception(std::exception_ptr error) {
  try {
    std::rethrow_exception(error);
  } catch (const service::ServiceOverloaded& e) {  // before ServiceBusy
    return {WireErrorCode::Overloaded, e.retry_after_ns(), e.what()};
  } catch (const service::ServiceBusy& e) {
    return {WireErrorCode::Busy, 0, e.what()};
  } catch (const service::ServiceStopped& e) {
    return {WireErrorCode::Stopped, 0, e.what()};
  } catch (const service::RequestCancelled& e) {
    return {WireErrorCode::Cancelled, 0, e.what()};
  } catch (const service::DeadlineExceeded& e) {
    return {WireErrorCode::DeadlineExceeded, 0, e.what()};
  } catch (const service::ClientError& e) {
    return {WireErrorCode::Client, 0, e.what()};
  } catch (const FrameError& e) {
    return {WireErrorCode::BadRequest, 0, e.what()};
  } catch (const std::invalid_argument& e) {
    // ArchiveError, ContainerError, and every format/bounds reject in the
    // pipeline derive std::invalid_argument: bad DATA, not a bad service.
    return {WireErrorCode::Archive, 0, e.what()};
  } catch (const std::exception& e) {
    return {WireErrorCode::Internal, 0, e.what()};
  } catch (...) {
    return {WireErrorCode::Internal, 0, "unknown server-side failure"};
  }
}

void throw_wire_error(const ErrorBody& body) {
  switch (body.code) {
    case WireErrorCode::Busy:
      throw service::ServiceBusy(body.message);
    case WireErrorCode::Overloaded:
      throw service::ServiceOverloaded(body.message, body.retry_after_ns);
    case WireErrorCode::Stopped:
      throw service::ServiceStopped(body.message);
    case WireErrorCode::Cancelled:
      throw service::RequestCancelled(body.message);
    case WireErrorCode::DeadlineExceeded:
      throw service::DeadlineExceeded(body.message);
    case WireErrorCode::Client:
      throw service::ClientError(body.message);
    case WireErrorCode::BadRequest:
    case WireErrorCode::Archive:
    case WireErrorCode::Internal:
      break;
  }
  throw RemoteError(static_cast<std::uint16_t>(body.code), body.message);
}

}  // namespace ohd::net
