#include "net/server.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <unordered_map>
#include <utility>

#include "net/net_metrics.hpp"
#include "pipeline/byte_stream.hpp"

namespace ohd::net {

namespace {

/// Rethrows body-parse failures as FrameError so the single catch-all in
/// handle_request maps them onto BadRequest (wire_error_from_exception puts
/// FrameError before the generic invalid_argument -> Archive bucket, which
/// would otherwise swallow them: ContainerError from a malformed uploaded
/// archive is ALSO an invalid_argument, and that one must stay Archive).
template <typename Fn>
auto parse_body(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const FrameError&) {
    throw;
  } catch (const std::invalid_argument& e) {
    throw FrameError(std::string("frame: bad request body: ") + e.what());
  }
}

service::RequestOptions options_from_header(const FrameHeader& header) {
  service::RequestOptions opts;
  opts.priority = header.priority;
  if (header.deadline_ns != 0) {
    // The wire carries a RELATIVE budget; anchor it on this process's steady
    // clock the moment the frame is decoded.
    opts.deadline = service::Deadline::after(
        std::chrono::nanoseconds(header.deadline_ns));
  }
  return opts;
}

}  // namespace

/// One accepted connection: the socket, its two threads, and the in-flight
/// request ledger shared between them. The reader produces Pending entries,
/// the completer consumes them; `mutex`/`cv` guard the ledger, `write_mutex`
/// serializes frames onto the socket (reader error frames interleave with
/// completer responses).
struct ServiceServer::Connection {
  explicit Connection(Socket s)
      : sock(std::move(s)), sink(sock.fd(), /*owns=*/false) {}

  Socket sock;
  pipeline::FdSink sink;   // the socket-backed ByteSink; under write_mutex
  std::mutex write_mutex;

  /// One admitted submission awaiting its response.
  struct Pending {
    std::uint64_t wire_id = 0;
    std::function<std::future_status(std::chrono::microseconds)> wait;
    std::function<void()> complete;  // get() + serialize + send, or error frame
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Pending> pending;
  /// wire id -> service id for every in-flight request: cancel-frame routing
  /// and disconnect cleanup.
  std::unordered_map<std::uint64_t, service::RequestId> live_wire;
  service::ClientId client = 0;
  bool client_open = false;
  bool draining = false;  // reader done; completer exits once pending empties

  std::atomic<bool> done{false};  // completer finished (threads joinable)
  bool claimed = false;           // under conn_mutex_: a reaper owns the join
  bool harvested = false;         // under conn_mutex_: error_frames retired
  obs::Counter error_frames;

  std::thread reader;
  std::thread completer;
};

ServiceServer::ServiceServer(service::CompressionService& service,
                             ServerConfig config)
    : service_(service), config_(std::move(config)) {
  if (config_.listen.empty()) {
    config_.listen.push_back(Endpoint::tcp(0));
  }
  // All-or-throw: Listener's constructor throws NetError on any bind/listen
  // failure, and the vector of already-bound listeners unwinds cleanly.
  for (const Endpoint& ep : config_.listen) {
    listeners_.push_back(std::make_unique<Listener>(ep));
    endpoints_.push_back(listeners_.back()->endpoint());
  }
  service_.set_net_error_frames_source([this] { return error_frames(); });
  for (auto& listener : listeners_) {
    acceptors_.emplace_back([this, l = listener.get()] { acceptor_loop(*l); });
  }
}

ServiceServer::ServiceServer(service::CompressionService& service)
    : ServiceServer(service, [&] {
        ServerConfig cfg;
        const service::ServiceConfig& sc = service.config();
        if (sc.listen_tcp) cfg.listen.push_back(Endpoint::tcp(sc.listen_tcp_port));
        if (!sc.listen_unix_path.empty()) {
          cfg.listen.push_back(Endpoint::unix_socket(sc.listen_unix_path));
        }
        return cfg;
      }()) {}

ServiceServer::~ServiceServer() {
  shutdown();
  service_.set_net_error_frames_source(nullptr);
}

void ServiceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    stopping_ = true;
  }
  for (auto& listener : listeners_) listener->close();
  for (auto& t : acceptors_) {
    if (t.joinable()) t.join();
  }
  // Half-close every connection for reading: the reader sees EOF and stops
  // taking frames, the completer drains what is in flight and flushes its
  // responses, and only then does the connection close.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns = connections_;
  }
  for (auto& c : conns) c->sock.shutdown_read();
  reap_connections(/*join_all=*/true);
}

bool ServiceServer::stopped() const {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  return stopping_;
}

ServerStats ServiceServer::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.value();
  s.open_connections = open_connections_.value();
  s.frames_in = frames_in_.value();
  s.frames_out = frames_out_.value();
  s.bytes_in = bytes_in_.value();
  s.bytes_out = bytes_out_.value();
  s.requests_submitted = requests_submitted_.value();
  s.decode_rejects = decode_rejects_.value();
  s.error_frames = error_frames();
  s.cancels_relayed = cancels_relayed_.value();
  return s;
}

std::uint64_t ServiceServer::error_frames() const {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  std::uint64_t total = retired_error_frames_;
  for (const auto& c : connections_) {
    if (!c->harvested) total += c->error_frames.value();
  }
  return total;
}

void ServiceServer::acceptor_loop(Listener& listener) {
  for (;;) {
    Socket sock = listener.accept();
    if (!sock.valid()) break;  // listener closed: shutdown
    auto conn = std::make_shared<Connection>(std::move(sock));
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (stopping_) break;  // late race: drop the connection (RAII closes it)
      connections_.push_back(conn);
    }
    connections_accepted_.add(1);
    open_connections_.add(1);
    if (obs::enabled()) net_metrics().connections.add(1);
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    conn->completer = std::thread([this, conn] { completer_loop(conn); });
    reap_connections(/*join_all=*/false);
  }
}

void ServiceServer::reader_loop(const std::shared_ptr<Connection>& conn) {
  Connection& c = *conn;
  try {
    for (;;) {
      std::uint8_t head[kFrameHeaderBytes];
      if (!recv_exact(c.sock.fd(), head)) break;  // clean frame-boundary EOF
      FrameHeader header;
      try {
        header = parse_frame_header(head, config_.max_frame_payload);
      } catch (const std::invalid_argument& e) {
        // A bad HEADER desynchronizes the stream: one id-0 reject, then close.
        decode_rejects_.add(1);
        if (obs::enabled()) net_metrics().decode_rejects.add(1);
        ErrorBody body;
        body.code = WireErrorCode::BadRequest;
        body.message = e.what();
        try {
          send_error(c, 0, body);
        } catch (const ConnectionLost&) {
        }
        break;
      }
      std::vector<std::uint8_t> payload(header.payload_len);
      if (header.payload_len != 0 && !recv_exact(c.sock.fd(), payload)) {
        break;  // EOF where a payload was promised: torn frame, close
      }
      frames_in_.add(1);
      bytes_in_.add(kFrameHeaderBytes + payload.size());
      if (obs::enabled()) {
        net_metrics().frames_in.add(1);
        net_metrics().bytes_in.add(kFrameHeaderBytes + payload.size());
      }
      try {
        verify_payload(header, payload);
      } catch (const FrameError& e) {
        // The header (and so the frame boundary) was sound — the stream is
        // still synchronized. Reject just this request.
        decode_rejects_.add(1);
        if (obs::enabled()) net_metrics().decode_rejects.add(1);
        ErrorBody body;
        body.code = WireErrorCode::BadRequest;
        body.message = e.what();
        send_error(c, header.request_id, body);
        continue;
      }
      switch (header.type) {
        case FrameType::Ping: {
          FrameHeader pong;
          pong.type = FrameType::Pong;
          pong.request_id = header.request_id;
          send_frame(c, pong, {});
          break;
        }
        case FrameType::Cancel: {
          service::RequestId target = 0;
          {
            std::lock_guard<std::mutex> lock(c.mutex);
            auto it = c.live_wire.find(header.request_id);
            if (it != c.live_wire.end()) target = it->second;
          }
          // Unknown / already-settled ids are a harmless no-op, exactly like
          // CompressionService::cancel itself.
          if (target != 0) {
            service_.cancel(target);
            cancels_relayed_.add(1);
          }
          break;
        }
        case FrameType::Request:
          handle_request(c, header, payload);
          break;
        default: {
          // Response/Error/Pong arriving AT the server is a protocol
          // violation; treat it like a desync.
          decode_rejects_.add(1);
          if (obs::enabled()) net_metrics().decode_rejects.add(1);
          ErrorBody body;
          body.code = WireErrorCode::BadRequest;
          body.message = "frame: unexpected frame type from client";
          try {
            send_error(c, 0, body);
          } catch (const ConnectionLost&) {
          }
        }
      }
      if (header.type != FrameType::Request &&
          header.type != FrameType::Cancel && header.type != FrameType::Ping) {
        break;
      }
    }
  } catch (const ConnectionLost&) {
    // Peer went away mid-frame; fall through to teardown.
  } catch (const NetError&) {
  }
  // Teardown: when the CLIENT went away, nobody can read the pending
  // responses — cancel them. Under graceful server shutdown the reader exits
  // via the half-close EOF instead, and in-flight requests must drain.
  bool graceful = false;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    graceful = stopping_;
  }
  std::vector<service::RequestId> to_cancel;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.draining = true;
    if (!graceful) {
      for (const auto& [wire_id, service_id] : c.live_wire) {
        to_cancel.push_back(service_id);
      }
    }
  }
  for (service::RequestId id : to_cancel) service_.cancel(id);
  c.cv.notify_all();
}

void ServiceServer::handle_request(Connection& c, const FrameHeader& header,
                                   std::span<const std::uint8_t> payload) {
  util::ByteReader r(payload);
  try {
    // Every op below OpenClient requires a negotiated session.
    const auto session_client = [&]() -> service::ClientId {
      std::lock_guard<std::mutex> lock(c.mutex);
      if (!c.client_open) {
        throw service::ClientError(
            "connection has no client session (send OpenClient first)");
      }
      return c.client;
    };
    // Async ops: the wire id must be fresh while its predecessor is in
    // flight (the demux key would be ambiguous otherwise).
    const auto require_fresh_id = [&] {
      std::lock_guard<std::mutex> lock(c.mutex);
      if (c.live_wire.count(header.request_id) != 0) {
        throw FrameError("frame: request id already in flight");
      }
    };

    switch (header.op) {
      case RequestOp::OpenClient: {
        const OpenClientBody body = parse_body([&] {
          auto b = read_open_client(r);
          expect_exhausted(r);
          return b;
        });
        {
          std::lock_guard<std::mutex> lock(c.mutex);
          if (c.client_open) {
            throw service::ClientError(
                "connection already negotiated a client session");
          }
        }
        service::ClientOptions opts = config_.client_defaults;
        opts.rel_error_bound = body.rel_error_bound;
        opts.radius = body.radius;
        opts.chunk_elems = static_cast<std::size_t>(body.chunk_elems);
        const service::ClientId id = service_.open_client(opts);
        {
          std::lock_guard<std::mutex> lock(c.mutex);
          c.client = id;
          c.client_open = true;
        }
        util::ByteWriter w;
        w.u64(id);
        send_response(c, header.op, header.request_id, w.bytes());
        return;
      }
      case RequestOp::CloseClient: {
        parse_body([&] { expect_exhausted(r); return 0; });
        service::ClientId id = 0;
        {
          std::lock_guard<std::mutex> lock(c.mutex);
          if (!c.client_open) {
            throw service::ClientError("connection has no client session");
          }
          id = c.client;
          c.client_open = false;
        }
        service_.close_client(id);
        send_response(c, header.op, header.request_id, {});
        return;
      }
      case RequestOp::OpenArchive: {
        auto image = parse_body([&] {
          auto bytes = r.array<std::uint8_t>();
          expect_exhausted(r);
          return bytes;
        });
        const service::ClientId id = session_client();
        auto source = std::make_shared<pipeline::OwningMemorySource>(
            std::move(image));
        const service::ArchiveHandle handle = service_.open_archive(id, source);
        util::ByteWriter w;
        w.u64(handle);
        send_response(c, header.op, header.request_id, w.bytes());
        return;
      }
      case RequestOp::CloseArchive: {
        const std::uint64_t handle = parse_body([&] {
          auto h = r.u64();
          expect_exhausted(r);
          return h;
        });
        service_.close_archive(session_client(),
                               static_cast<service::ArchiveHandle>(handle));
        send_response(c, header.op, header.request_id, {});
        return;
      }
      case RequestOp::Compress: {
        service::CompressJob job = parse_body([&] {
          auto j = read_compress_job(r);
          expect_exhausted(r);
          return j;
        });
        const service::ClientId id = session_client();
        require_fresh_id();
        track(c, header,
              service_.submit_compress(id, std::move(job),
                                       options_from_header(header)),
              [](service::CompressResult& v) {
                util::ByteWriter w;
                w.bytes(v.archive);
                return w.take();
              });
        return;
      }
      case RequestOp::Decompress: {
        const std::uint64_t handle = parse_body([&] {
          auto h = r.u64();
          expect_exhausted(r);
          return h;
        });
        const service::ClientId id = session_client();
        require_fresh_id();
        track(c, header,
              service_.submit_decompress(
                  id, static_cast<service::ArchiveHandle>(handle),
                  options_from_header(header)),
              [](pipeline::BatchDecompressResult& v) {
                DecompressBody body;
                body.fields.reserve(v.fields.size());
                for (auto& f : v.fields) {
                  body.fields.push_back({std::move(f.name),
                                         std::move(f.decode.data)});
                }
                util::ByteWriter w;
                write_decompress_result(w, body);
                return w.take();
              });
        return;
      }
      case RequestOp::Chunk: {
        const auto [handle, field, chunk] = parse_body([&] {
          auto h = r.u64();
          auto f = r.u64();
          auto k = r.u64();
          expect_exhausted(r);
          return std::tuple(h, f, k);
        });
        const service::ClientId id = session_client();
        require_fresh_id();
        track(c, header,
              service_.submit_chunk(id,
                                    static_cast<service::ArchiveHandle>(handle),
                                    static_cast<std::size_t>(field),
                                    static_cast<std::size_t>(chunk),
                                    options_from_header(header)),
              [](std::vector<float>& v) {
                util::ByteWriter w;
                write_floats(w, v);
                return w.take();
              });
        return;
      }
      case RequestOp::Range: {
        const auto [handle, field, begin, end] = parse_body([&] {
          auto h = r.u64();
          auto f = r.u64();
          auto b = r.u64();
          auto e = r.u64();
          expect_exhausted(r);
          return std::tuple(h, f, b, e);
        });
        const service::ClientId id = session_client();
        require_fresh_id();
        track(c, header,
              service_.submit_range(id,
                                    static_cast<service::ArchiveHandle>(handle),
                                    static_cast<std::size_t>(field), begin, end,
                                    options_from_header(header)),
              [](std::vector<float>& v) {
                util::ByteWriter w;
                write_floats(w, v);
                return w.take();
              });
        return;
      }
    }
    throw FrameError("frame: unhandled request op");
  } catch (const ConnectionLost&) {
    throw;  // the send path failed, not the request: let the reader close
  } catch (...) {
    const ErrorBody body = wire_error_from_exception(std::current_exception());
    if (body.code == WireErrorCode::BadRequest) {
      decode_rejects_.add(1);
      if (obs::enabled()) net_metrics().decode_rejects.add(1);
    }
    send_error(c, header.request_id, body);
  }
}

template <typename T, typename SerializeFn>
void ServiceServer::track(Connection& c, const FrameHeader& header,
                          service::Submission<T> submission,
                          SerializeFn serialize) {
  auto future = std::make_shared<std::future<T>>(std::move(submission.future));
  Connection::Pending p;
  p.wire_id = header.request_id;
  p.wait = [future](std::chrono::microseconds timeout) {
    return future->wait_for(timeout);
  };
  p.complete = [this, &c, future, serialize, op = header.op,
                wire_id = header.request_id]() mutable {
    try {
      T value = future->get();
      const std::vector<std::uint8_t> payload = serialize(value);
      send_response(c, op, wire_id, payload);
    } catch (const ConnectionLost&) {
      // Peer already gone; the reader teardown owns cleanup.
    } catch (...) {
      const ErrorBody body =
          wire_error_from_exception(std::current_exception());
      try {
        send_error(c, wire_id, body);
      } catch (const ConnectionLost&) {
      }
    }
  };
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.live_wire.emplace(header.request_id, submission.id);
    c.pending.push_back(std::move(p));
  }
  requests_submitted_.add(1);
  c.cv.notify_all();
}

void ServiceServer::completer_loop(const std::shared_ptr<Connection>& conn) {
  Connection& c = *conn;
  {
    std::unique_lock<std::mutex> lock(c.mutex);
    for (;;) {
      if (!c.pending.empty()) {
        bool completed_one = false;
        for (auto it = c.pending.begin(); it != c.pending.end(); ++it) {
          if (it->wait(std::chrono::microseconds(0)) ==
              std::future_status::ready) {
            Connection::Pending p = std::move(*it);
            c.pending.erase(it);
            c.live_wire.erase(p.wire_id);
            lock.unlock();
            p.complete();
            lock.lock();
            completed_one = true;
            break;
          }
        }
        if (completed_one) continue;
        // Nothing settled: bounded wait on the OLDEST submission, so a
        // response that lands on any other future waits at most
        // completion_poll before the next scan picks it up.
        auto wait = c.pending.front().wait;
        lock.unlock();
        wait(config_.completion_poll);
        lock.lock();
        continue;
      }
      if (c.draining) break;
      c.cv.wait(lock, [&c] { return c.draining || !c.pending.empty(); });
    }
  }
  // Session teardown, exactly once, after the last response flushed: close
  // the connection's service client (releases its archive handles), then
  // retire this connection's error-frame count into the lifetime total.
  service::ClientId client = 0;
  bool open = false;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    open = c.client_open;
    client = c.client;
    c.client_open = false;
  }
  if (open) {
    try {
      service_.close_client(client);
    } catch (const std::exception&) {
      // The service may already be stopping; the session is gone either way.
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (!c.harvested) {
      retired_error_frames_ += c.error_frames.value();
      c.harvested = true;
    }
  }
  open_connections_.sub(1);
  if (obs::enabled()) net_metrics().connections.sub(1);
  c.sock.shutdown_both();  // wake a reader still blocked in recv, if any
  c.done.store(true);
}

void ServiceServer::send_frame(Connection& c, const FrameHeader& header,
                               std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> frame = encode_frame(header, payload);
  {
    std::lock_guard<std::mutex> lock(c.write_mutex);
    try {
      c.sink.write(frame);
    } catch (const pipeline::ArchiveError& e) {
      throw ConnectionLost(e.what());
    }
  }
  frames_out_.add(1);
  bytes_out_.add(frame.size());
  if (obs::enabled()) {
    net_metrics().frames_out.add(1);
    net_metrics().bytes_out.add(frame.size());
  }
}

void ServiceServer::send_response(Connection& c, RequestOp op,
                                  std::uint64_t request_id,
                                  std::span<const std::uint8_t> payload) {
  FrameHeader h;
  h.type = FrameType::Response;
  h.op = op;
  h.request_id = request_id;
  send_frame(c, h, payload);
}

void ServiceServer::send_error(Connection& c, std::uint64_t request_id,
                               const ErrorBody& body) {
  util::ByteWriter w;
  write_error(w, body);
  FrameHeader h;
  h.type = FrameType::Error;
  h.request_id = request_id;
  c.error_frames.add(1);
  if (obs::enabled()) net_metrics().error_frames.add(1);
  send_frame(c, h, w.bytes());
}

void ServiceServer::reap_connections(bool join_all) {
  std::vector<std::shared_ptr<Connection>> doomed;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& c : connections_) {
      if (c->claimed) continue;
      if (join_all || c->done.load()) {
        c->claimed = true;
        doomed.push_back(c);
      }
    }
  }
  for (auto& c : doomed) {
    if (c->reader.joinable()) c->reader.join();
    if (c->completer.joinable()) c->completer.join();
  }
  // Forget them only AFTER the join: a joined completer has harvested its
  // error frames, so the lifetime total never dips.
  if (!doomed.empty()) {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    std::erase_if(connections_, [&](const std::shared_ptr<Connection>& c) {
      for (const auto& d : doomed) {
        if (d == c) return true;
      }
      return false;
    });
  }
}

}  // namespace ohd::net
