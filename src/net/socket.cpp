#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ohd::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw NetError("unix socket path '" + path + "' empty or longer than " +
                   std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: a socket that ignores TCP_NODELAY (unix domain) is fine.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

std::string Endpoint::describe() const {
  if (kind == Kind::Unix) return "unix:" + unix_path;
  return "tcp:127.0.0.1:" + std::to_string(tcp_port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::shutdown_read() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(const Endpoint& endpoint) : endpoint_(endpoint) {
  if (endpoint_.kind == Endpoint::Kind::Unix) {
    const sockaddr_un addr = unix_addr(endpoint_.unix_path);
    // A stale socket file from a dead server would fail the bind; the
    // listener owns the path, so replacing it is the right call.
    (void)::unlink(endpoint_.unix_path.c_str());
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) fail_errno("socket(" + endpoint_.describe() + ")");
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail_errno("bind(" + endpoint_.describe() + ")");
    }
    unlink_on_close_ = true;
    if (::listen(s.fd(), 64) != 0) {
      fail_errno("listen(" + endpoint_.describe() + ")");
    }
    sock_ = std::move(s);
    return;
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail_errno("socket(" + endpoint_.describe() + ")");
  const int one = 1;
  (void)::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(endpoint_.tcp_port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail_errno("bind(" + endpoint_.describe() + ")");
  }
  if (endpoint_.tcp_port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      fail_errno("getsockname(" + endpoint_.describe() + ")");
    }
    endpoint_.tcp_port = ntohs(bound.sin_port);
  }
  if (::listen(s.fd(), 64) != 0) {
    fail_errno("listen(" + endpoint_.describe() + ")");
  }
  sock_ = std::move(s);
}

Listener::~Listener() { close(); }

Socket Listener::accept() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // EBADF/EINVAL: close() shut the listener down — the clean exit path.
    return Socket();
  }
}

void Listener::close() {
  // shutdown() first: closing an fd another thread is blocked in accept() on
  // does not reliably wake it; shutdown does (accept fails with EINVAL).
  sock_.shutdown_both();
  sock_.close();
  if (unlink_on_close_) {
    (void)::unlink(endpoint_.unix_path.c_str());
    unlink_on_close_ = false;
  }
}

Socket connect_to(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::Unix) {
    const sockaddr_un addr = unix_addr(endpoint.unix_path);
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) fail_errno("socket(" + endpoint.describe() + ")");
    if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      fail_errno("connect(" + endpoint.describe() + ")");
    }
    return s;
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) fail_errno("socket(" + endpoint.describe() + ")");
  const sockaddr_in addr = loopback_addr(endpoint.tcp_port);
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    fail_errno("connect(" + endpoint.describe() + ")");
  }
  set_nodelay(s.fd());
  return s;
}

void send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      throw ConnectionLost("send: peer closed the connection");
    }
    throw NetError(std::string("send: ") + std::strerror(errno));
  }
}

bool recv_exact(int fd, std::span<std::uint8_t> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd, out.data() + got, out.size() - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;  // clean close on a frame boundary
      throw ConnectionLost("recv: connection closed mid-frame (" +
                           std::to_string(got) + " of " +
                           std::to_string(out.size()) + " bytes)");
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      throw ConnectionLost("recv: connection reset");
    }
    throw NetError(std::string("recv: ") + std::strerror(errno));
  }
  return true;
}

}  // namespace ohd::net
