// Registry handles of the "net.*" telemetry catalogue, shared by the server
// and client (both ends of a loopback deployment report into one process
// registry, so the counters aggregate across them — the same discipline as
// "service.*"). Resolved once; recording through the references is
// lock-free. Only touched behind obs::enabled().
#pragma once

#include "obs/metrics.hpp"

namespace ohd::net {

struct NetMetrics {
  obs::Counter& frames_in;
  obs::Counter& frames_out;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& decode_rejects;
  obs::Counter& error_frames;
  obs::Counter& reconnects;
  obs::Gauge& connections;
};

inline NetMetrics& net_metrics() {
  static NetMetrics* m = [] {
    auto& r = obs::registry();
    return new NetMetrics{r.counter("net.frames_in"),
                          r.counter("net.frames_out"),
                          r.counter("net.bytes_in"),
                          r.counter("net.bytes_out"),
                          r.counter("net.decode_rejects"),
                          r.counter("net.error_frames"),
                          r.counter("net.reconnects"),
                          r.gauge("net.connections")};
  }();
  return *m;
}

}  // namespace ohd::net
