// Wire frame codec of the network service protocol (docs/wire_protocol.md is
// the byte-level reference). Every message on a connection is one FRAME: a
// fixed 40-byte header — magic, version, frame type, request op, priority,
// request id, relative deadline, payload length, payload CRC-32, header
// CRC-32 — followed by `payload_len` opaque payload bytes. Frames are
// length-prefixed precisely so a reader can consume the header, validate it,
// and size the payload read BEFORE allocating anything payload-shaped: a
// malformed, truncated, or oversized frame is rejected from the 40 header
// bytes alone.
//
// Corruption posture: the header CRC covers bytes [0, 36) (everything before
// itself), the payload CRC covers the payload bytes, and CRC-32 detects all
// single-bit errors — so any single-bit flip anywhere in a captured frame is
// rejected, which the frame fuzz suite pins. A header that fails validation
// desynchronizes the byte stream (the reader no longer knows where the next
// frame starts) and MUST close the connection; a payload that fails its
// body-level parse does not (the frame boundary was sound), so the peer gets
// a typed error frame and the connection lives on.
//
// Serialization rides the existing util::ByteWriter/ByteReader contracts:
// body readers are bounds-checked and throw std::invalid_argument on any
// truncation or length overrun, FrameError derives std::invalid_argument, so
// "reject" is one catchable type at every call site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/service_types.hpp"
#include "sz/lorenzo.hpp"
#include "util/bytes.hpp"

namespace ohd::net {

/// Malformed wire data: bad magic/version/type, field constraint violations,
/// CRC mismatches, truncated or oversized frames, trailing payload garbage.
class FrameError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A remote failure with no local exception type: the server hit an archive/
/// format error, rejected a malformed body, or failed internally. Carries the
/// pinned wire code so callers can still dispatch on it.
class RemoteError : public std::runtime_error {
 public:
  RemoteError(std::uint16_t code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  std::uint16_t code() const { return code_; }

 private:
  std::uint16_t code_ = 0;
};

/// The client lost (or could not establish) its connection; pending futures
/// settle with this, and the reconnect/retry loop treats it as retryable.
class ConnectionLost : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kFrameMagic[4] = {'O', 'H', 'D', 'N'};
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 40;
/// Default per-frame payload ceiling (1 GiB); both ends reject frames whose
/// header declares more BEFORE allocating.
inline constexpr std::uint64_t kDefaultMaxPayload = std::uint64_t{1} << 30;

/// What a frame is. Request carries an op + body, Response echoes the
/// request's id and op, Error settles a request (or id 0: a connection-level
/// reject), Cancel names an in-flight request id, Ping/Pong are liveness.
enum class FrameType : std::uint8_t {
  Request = 0,
  Response = 1,
  Error = 2,
  Cancel = 3,
  Ping = 4,
  Pong = 5,
};
inline constexpr std::uint8_t kMaxFrameType = 5;

/// The request verbs, one service front-end entry point each.
enum class RequestOp : std::uint8_t {
  OpenClient = 0,    // negotiate per-session ClientOptions -> server client
  CloseClient = 1,
  OpenArchive = 2,   // upload an archive image -> handle
  CloseArchive = 3,
  Compress = 4,
  Decompress = 5,
  Chunk = 6,
  Range = 7,
};
inline constexpr std::uint8_t kMaxRequestOp = 7;

/// Pinned wire error codes (docs/wire_protocol.md owns the table; renumbering
/// is a protocol version bump). 1-6 map 1:1 onto the service error taxonomy;
/// 7-9 are wire/server-side conditions with no dedicated local type.
enum class WireErrorCode : std::uint16_t {
  Busy = 1,              // service::ServiceBusy (incl. quota rejections)
  Overloaded = 2,        // service::ServiceOverloaded (+ retry_after_ns)
  Stopped = 3,           // service::ServiceStopped
  Cancelled = 4,         // service::RequestCancelled
  DeadlineExceeded = 5,  // service::DeadlineExceeded
  Client = 6,            // service::ClientError
  BadRequest = 7,        // well-framed but malformed request body
  Archive = 8,           // archive/format error while executing (ArchiveError,
                         // ContainerError, and kin)
  Internal = 9,          // anything else the server caught
};

/// The decoded fixed header. `op`/`priority`/`deadline_ns` are meaningful on
/// Request frames (Response echoes `op`; everything else pins them to 0) —
/// the parser enforces exactly that, so a decoded header is always
/// internally consistent.
struct FrameHeader {
  FrameType type = FrameType::Ping;
  RequestOp op = RequestOp::OpenClient;
  service::Priority priority = service::Priority::Batch;
  std::uint64_t request_id = 0;
  /// RELATIVE completion budget in ns (0 = none): absolute steady-clock
  /// deadlines do not transfer between processes, so the wire carries the
  /// budget and the server anchors it when it decodes the frame.
  std::uint64_t deadline_ns = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// Serializes header + payload into one contiguous frame image. Computes
/// both CRCs; `header.payload_len`/`payload_crc` inputs are ignored.
std::vector<std::uint8_t> encode_frame(const FrameHeader& header,
                                       std::span<const std::uint8_t> payload);

/// Strict header parse over exactly the first kFrameHeaderBytes of `bytes`.
/// Validation order (each failure a distinct FrameError): size, magic,
/// header CRC, version, frame type, op/priority/deadline/request-id
/// constraints per type, payload_len <= max_payload. Never allocates.
FrameHeader parse_frame_header(std::span<const std::uint8_t> bytes,
                               std::uint64_t max_payload = kDefaultMaxPayload);

/// Payload gate: length must equal the header's payload_len and the CRC must
/// match. Throws FrameError.
void verify_payload(const FrameHeader& header,
                    std::span<const std::uint8_t> payload);

/// Whole-buffer convenience (tests, fuzzing): parses one complete frame and
/// rejects trailing bytes.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};
Frame parse_frame(std::span<const std::uint8_t> bytes,
                  std::uint64_t max_payload = kDefaultMaxPayload);

// ---- request/response payload bodies ---------------------------------
//
// Each body has a writer (into a util::ByteWriter) and a strict reader (from
// a util::ByteReader) that throws FrameError/std::invalid_argument on any
// malformed content. Frame-level readers call the body reader and then
// require the payload to be EXHAUSTED — trailing garbage is a reject.

/// OpenClient: the wire-negotiable subset of service::ClientOptions. The
/// server fills the rest (decoder config, planning) from its defaults, so
/// both ends of a bit-identity check must agree on those defaults.
struct OpenClientBody {
  double rel_error_bound = 1e-3;
  std::uint32_t radius = 512;
  std::uint64_t chunk_elems = std::uint64_t{1} << 16;
};

struct ErrorBody {
  WireErrorCode code = WireErrorCode::Internal;
  std::uint64_t retry_after_ns = 0;  // meaningful for Overloaded
  std::string message;
};

void write_open_client(util::ByteWriter& w, const OpenClientBody& body);
OpenClientBody read_open_client(util::ByteReader& r);

void write_error(util::ByteWriter& w, const ErrorBody& body);
ErrorBody read_error(util::ByteReader& r);

void write_compress_job(util::ByteWriter& w, const service::CompressJob& job);
service::CompressJob read_compress_job(util::ByteReader& r);

/// Decompress response: per-field name + floats (timings stay server-side).
struct DecompressedField {
  std::string name;
  std::vector<float> data;
};
struct DecompressBody {
  std::vector<DecompressedField> fields;
};
void write_decompress_result(util::ByteWriter& w, const DecompressBody& body);
DecompressBody read_decompress_result(util::ByteReader& r);

void write_floats(util::ByteWriter& w, std::span<const float> values);
std::vector<float> read_floats(util::ByteReader& r);

void write_string(util::ByteWriter& w, const std::string& s);
std::string read_string(util::ByteReader& r);

void write_dims(util::ByteWriter& w, const sz::Dims& dims);
sz::Dims read_dims(util::ByteReader& r);

/// Requires `r` fully consumed; throws FrameError on trailing bytes. Every
/// body reader's caller ends with this.
void expect_exhausted(util::ByteReader& r);

// ---- error taxonomy <-> wire codes ------------------------------------

/// Maps a caught exception onto its pinned wire code (server side). Order
/// matters and is pinned by tests: ServiceOverloaded before ServiceBusy
/// (subclass first), the service taxonomy before the generic buckets.
ErrorBody wire_error_from_exception(std::exception_ptr error);

/// Reconstructs the local exception of an error frame (client side): codes
/// 1-6 throw the matching service:: type (Overloaded re-carries
/// retry_after_ns), everything else throws RemoteError with the code.
[[noreturn]] void throw_wire_error(const ErrorBody& body);

}  // namespace ohd::net
