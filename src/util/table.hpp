// Minimal fixed-width table printer used by the benchmark harness to emit the
// same row/column structure as the paper's tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace ohd::util {

/// A left-header table: first column is a row label, remaining columns are
/// dataset names (or sweep points). Cells are preformatted strings.
class Table {
public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_columns(std::vector<std::string> columns);
  void add_row(const std::string& label, const std::vector<std::string>& cells);

  /// Renders the table with aligned columns to a string (ends with '\n').
  std::string render() const;

  /// Convenience: render() and write to stdout.
  void print() const;

private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<std::string>>> rows_;
};

/// Formats a double with the given number of decimals (no locale surprises).
std::string fmt(double value, int decimals = 1);

/// Formats a multiplier like the paper's speedup rows, e.g. "3.64x".
std::string fmt_speedup(double value);

}  // namespace ohd::util
