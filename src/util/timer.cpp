#include "util/timer.hpp"

namespace ohd::util {

double throughput_gbps(std::uint64_t bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / 1e9 / seconds;
}

double mebibytes(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace ohd::util
