#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace ohd::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geomean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double minimum(std::span<const double> values) {
  return values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
}

double maximum(std::span<const double> values) {
  return values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
}

double Xoshiro256::normal() {
  // Box-Muller; uses two uniforms per call. Lives here to keep <cmath> out of
  // the header.
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace ohd::util
