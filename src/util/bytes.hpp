// Bounds-checked little-endian byte serialization, used by the blob
// (de)serializers in core/ and sz/. Deliberately exception-based: a truncated
// or corrupted blob must never read out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ohd::util {

class ByteWriter {
public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f32(float v) { raw(&v, 4); }
  void f64(double v) { raw(&v, 8); }

  void magic(const char tag[4]) { raw(tag, 4); }

  template <typename T>
  void array(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(values.size());
    raw(values.data(), values.size() * sizeof(T));
  }

  void bytes(std::span<const std::uint8_t> values) {
    array<std::uint8_t>(values);
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }
  std::span<const std::uint8_t> bytes() const { return bytes_; }

  /// Preallocates for a writer whose final size is known up front (e.g.
  /// Container::serialized_size()), so the append path never reallocates.
  void reserve(std::size_t n) { bytes_.reserve(n); }

private:
  void raw(const void* data, std::size_t n) {
    if (n == 0) return;  // an empty array's data() may be null
    // resize+memcpy instead of insert: same bytes, but it sidesteps a GCC 12
    // -Wstringop-overflow false positive on insert-after-exact-reserve.
    const std::size_t old = bytes_.size();
    bytes_.resize(old + n);
    std::memcpy(bytes_.data() + old, data, n);
  }
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  float f32() { return take<float>(); }
  double f64() { return take<double>(); }

  void expect_magic(const char tag[4]) {
    char got[4];
    raw(got, 4);
    if (std::memcmp(got, tag, 4) != 0) {
      throw std::invalid_argument(std::string("bad magic, expected ") +
                                  std::string(tag, 4));
    }
  }

  template <typename T>
  std::vector<T> array(std::uint64_t max_count = 1ull << 32) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    if (n > max_count || n * sizeof(T) > remaining()) {
      throw std::invalid_argument("array length exceeds blob size");
    }
    std::vector<T> out(n);
    raw(out.data(), n * sizeof(T));
    return out;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

private:
  template <typename T>
  T take() {
    T v;
    raw(&v, sizeof(T));
    return v;
  }
  void raw(void* out, std::size_t n) {
    if (n > remaining()) {
      throw std::invalid_argument("truncated blob");
    }
    // memcpy with a null pointer is UB even for n == 0, and an empty
    // destination vector's data() is null.
    if (n > 0) {
      std::memcpy(out, bytes_.data() + pos_, n);
      pos_ += n;
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace ohd::util
