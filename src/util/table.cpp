#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ohd::util {

void Table::set_columns(std::vector<std::string> columns) {
  columns_ = std::move(columns);
}

void Table::add_row(const std::string& label,
                    const std::vector<std::string>& cells) {
  rows_.emplace_back(label, cells);
}

std::string Table::render() const {
  // Column widths: label column then data columns.
  std::size_t label_w = 0;
  for (const auto& [label, cells] : rows_) {
    label_w = std::max(label_w, label.size());
  }
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& [label, cells] : rows_) {
    for (std::size_t c = 0; c < cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], cells[c].size());
    }
  }

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  out << std::string(label_w, ' ');
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << "  " << std::string(widths[c] - columns_[c].size(), ' ')
        << columns_[c];
  }
  out << '\n';
  for (const auto& [label, cells] : rows_) {
    out << label << std::string(label_w - label.size(), ' ');
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string cell = c < cells.size() ? cells[c] : std::string("-");
      out << "  " << std::string(widths[c] > cell.size() ? widths[c] - cell.size() : 0, ' ')
          << cell;
    }
    out << '\n';
  }
  return out.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_speedup(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", value);
  return buf;
}

}  // namespace ohd::util
