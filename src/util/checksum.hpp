// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans. Used
// by the pipeline container to detect corrupted chunk frames before they
// reach the blob deserializer.
#pragma once

#include <cstdint>
#include <span>

namespace ohd::util {

std::uint32_t crc32(std::span<const std::uint8_t> bytes);

}  // namespace ohd::util
