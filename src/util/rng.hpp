// Deterministic, fast pseudo-random number generation used by all dataset
// generators and property tests. We avoid std::mt19937 in hot paths because a
// small counter-based generator is faster and its state is trivially copyable
// across (simulated) threads.
#pragma once

#include <cstdint>
#include <limits>

namespace ohd::util {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation,
/// re-expressed). Deterministic across platforms.
class Xoshiro256 {
public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t bounded(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling; bias is negligible for
    // the ranges used here (n << 2^64).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Standard normal via Box-Muller (cached second value dropped for
  /// simplicity; generators are not perf-critical).
  double normal();

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ohd::util
