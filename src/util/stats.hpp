// Small statistics helpers shared by benches and tests.
#pragma once

#include <cstddef>
#include <span>

namespace ohd::util {

double mean(std::span<const double> values);
double geomean(std::span<const double> values);
double minimum(std::span<const double> values);
double maximum(std::span<const double> values);

}  // namespace ohd::util
