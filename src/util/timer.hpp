// Wall-clock timing for the benchmark harness. Simulated-GPU timings come from
// cudasim::PerfModel, not from this timer; WallTimer only measures host cost
// (reported separately so readers can distinguish the two).
#pragma once

#include <chrono>
#include <cstdint>

namespace ohd::util {

class WallTimer {
public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Computes throughput in GB/s (decimal gigabytes, as in the paper) given a
/// payload size in bytes and a duration in seconds.
double throughput_gbps(std::uint64_t bytes, double seconds);

/// Mebibytes helper mirroring the paper's "size in mebibyte" rows.
double mebibytes(std::uint64_t bytes);

}  // namespace ohd::util
