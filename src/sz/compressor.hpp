// The cuSZ-style error-bounded lossy compression pipeline:
//
//   compress:   Lorenzo predict + quantize  ->  Huffman encode (per method)
//   decompress: Huffman decode (per method) ->  reverse Lorenzo
//
// Decompression charges the simulated GPU timeline for every stage, which is
// what the end-to-end experiments (paper Figures 4 and 5) measure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/huffman_codec.hpp"
#include "cudasim/exec.hpp"
#include "sz/lorenzo.hpp"
#include "sz/metrics.hpp"

namespace ohd::sz {

struct CompressorConfig {
  /// Point-wise error bound relative to the field's value range (the paper
  /// evaluates at relative eb 1e-3).
  double rel_error_bound = 1e-3;
  std::uint32_t radius = 512;
  core::Method method = core::Method::GapArrayOptimized;
  core::DecoderConfig decoder;
};

/// One serialized outlier record: u64 element index + f32 exact value.
/// Shared by compressed_bytes() accounting, the simulated outlier-scatter
/// kernel, and the byte-level serializers (sz/serialize, pipeline/container).
inline constexpr std::uint64_t kOutlierEntryBytes = 12;

/// Fixed per-blob framing budget: magic + version + dims + error bound +
/// radius + outlier count + embedded-stream length prefix. A stable budget
/// (not chased byte-for-byte) so the size model stays comparable across
/// format revisions; tests/sz/serialize_test.cpp pins it to the real framing.
inline constexpr std::uint64_t kBlobHeaderBytes = 64;

struct CompressedBlob {
  Dims dims;
  double abs_error_bound = 0.0;
  std::uint32_t radius = 512;
  core::EncodedStream encoded;           // Huffman-coded quantization codes
  std::vector<Outlier> outliers;

  std::uint64_t original_bytes() const { return dims.count() * 4; }
  std::uint64_t quant_code_bytes() const {
    return encoded.quant_code_bytes();
  }
  std::uint64_t compressed_bytes() const {
    // Huffman payload + codebook + outliers (index+value) + header.
    return encoded.compressed_bytes() + outliers.size() * kOutlierEntryBytes +
           kBlobHeaderBytes;
  }
  double ratio() const {
    return compression_ratio(original_bytes(), compressed_bytes());
  }
};

struct DecompressionResult {
  std::vector<float> data;
  core::PhaseTimings huffman_phases;
  double huffman_seconds = 0.0;
  double reverse_lorenzo_seconds = 0.0;
  double outlier_scatter_seconds = 0.0;
  double h2d_seconds = 0.0;  // only when simulate_h2d (Figure 5)

  double total_seconds() const {
    return huffman_seconds + reverse_lorenzo_seconds +
           outlier_scatter_seconds + h2d_seconds;
  }
};

/// The absolute bound sz::compress derives from a relative one: the bound
/// scaled by the field's value range (a zero range degenerates to the bound
/// itself). Exposed so the chunked pipeline can fix ONE absolute bound per
/// field and compress its chunks independently — per-chunk relative bounds
/// would drift with each chunk's local range.
double resolve_error_bound(std::span<const float> data, double rel_error_bound);

/// Compresses `data` with the pipeline configured in `config`.
CompressedBlob compress(std::span<const float> data, const Dims& dims,
                        const CompressorConfig& config);

/// Chunk-level entry point: same pipeline, but with a caller-supplied
/// ABSOLUTE error bound (`config.rel_error_bound` is ignored).
CompressedBlob compress_with_abs_bound(std::span<const float> data,
                                       const Dims& dims, double abs_error_bound,
                                       const CompressorConfig& config);

/// Prediction + quantization half of the pipeline, split out so the batch
/// planner can probe a chunk's quantized codes (entropy, outliers, runs)
/// BEFORE committing to an encoding method or codebook.
QuantizedField quantize_with_abs_bound(std::span<const float> data,
                                       const Dims& dims, double abs_error_bound,
                                       const CompressorConfig& config);

/// Encoding half: Huffman-encodes an already-quantized chunk with a private
/// codebook built from the chunk's own histogram. `method` overrides
/// `config.method` so the planner can pick a method per chunk.
CompressedBlob encode_quantized(QuantizedField&& q, core::Method method,
                                const CompressorConfig& config);

/// Codebook-injection variant: encodes against a caller-supplied (shared)
/// codebook, which must cover every quant code of the chunk. The resulting
/// blob serializes WITHOUT codebook bytes via serialize_blob(blob, false).
CompressedBlob encode_quantized(QuantizedField&& q, core::Method method,
                                const CompressorConfig& config,
                                const huffman::Codebook& codebook);

/// Decompresses on the simulated GPU. When `simulate_h2d` is set, the
/// compressed payload is first "copied" host-to-device over the PCIe model
/// (Figure 5's scenario); otherwise data is assumed device-resident
/// (in-memory compression, Figure 4). Rank-1 blobs take the fused
/// decode-write path (decoded codes stream through dequantize + 1-D Lorenzo
/// straight into the result buffer) unless
/// `decoder_config.use_fused_write` is off; floats are identical either way.
DecompressionResult decompress(cudasim::SimContext& ctx,
                               const CompressedBlob& blob,
                               const core::DecoderConfig& decoder_config = {},
                               bool simulate_h2d = false);

/// Decompress-into variant: identical simulated timings, but the floats land
/// in caller-owned memory (`out.size() == blob.dims.count()`) and the
/// returned result's `data` stays empty. This is the pipeline chunk-decode
/// entry point: each chunk reconstructs straight into its slice of the field
/// buffer, with no per-chunk float vector or merge copy.
DecompressionResult decompress_into(cudasim::SimContext& ctx,
                                    const CompressedBlob& blob,
                                    std::span<float> out,
                                    const core::DecoderConfig& decoder_config = {},
                                    bool simulate_h2d = false);

/// Fully fused HOST decode→dequantize→reconstruct for rank-1 blobs: Huffman-
/// decodes the quant codes with the multi-symbol LUT and streams each one
/// through dequantize + 1-D Lorenzo straight into `out` — no simulation, no
/// intermediate quant-code vector, one pass instead of three. Float-exact
/// vs decompress(); throws for rank-2/3 blobs and the 8-bit gap baseline.
void fused_decode_reconstruct(const CompressedBlob& blob, std::span<float> out);

}  // namespace ohd::sz
