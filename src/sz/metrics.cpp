#include "sz/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ohd::sz {

ErrorStats compute_error_stats(std::span<const float> original,
                               std::span<const float> reconstructed) {
  if (original.size() != reconstructed.size()) {
    throw std::invalid_argument("size mismatch");
  }
  ErrorStats stats;
  if (original.empty()) return stats;

  double lo = original[0], hi = original[0];
  double sq_sum = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double err = static_cast<double>(original[i]) -
                       static_cast<double>(reconstructed[i]);
    stats.max_abs_error = std::max(stats.max_abs_error, std::abs(err));
    sq_sum += err * err;
    lo = std::min(lo, static_cast<double>(original[i]));
    hi = std::max(hi, static_cast<double>(original[i]));
  }
  stats.value_range = hi - lo;
  const double mse = sq_sum / static_cast<double>(original.size());
  stats.psnr_db = mse == 0.0 ? 999.0
                             : 20.0 * std::log10(stats.value_range) -
                                   10.0 * std::log10(mse);
  return stats;
}

double compression_ratio(std::uint64_t original_bytes,
                         std::uint64_t compressed_bytes) {
  return compressed_bytes == 0
             ? 0.0
             : static_cast<double>(original_bytes) /
                   static_cast<double>(compressed_bytes);
}

}  // namespace ohd::sz
