// Prediction + error-bounded quantization, the cuSZ "dual-quant" front end:
// a Lorenzo predictor (1-D/2-D/3-D) over the RECONSTRUCTED field and a linear
// quantizer with a user error bound. Out-of-range predictions become
// outliers stored exactly, as in cuSZ (code 0 is reserved for them).
//
// Decompression-side counterparts: the staged lorenzo_reconstruct (any rank,
// needs the whole code vector), and the streaming Lorenzo1DSink — the back
// half of the fused decode→dequantize→reconstruct write path, which consumes
// quantization codes one at a time in stream order and writes reconstructed
// floats straight into the destination buffer, with no lattice vector and
// float-for-float identical output to the staged path.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace ohd::sz {

struct Dims {
  std::array<std::size_t, 3> extent{1, 1, 1};  // x (fastest), y, z
  std::uint32_t rank = 1;

  static Dims d1(std::size_t nx) { return {{nx, 1, 1}, 1}; }
  static Dims d2(std::size_t nx, std::size_t ny) { return {{nx, ny, 1}, 2}; }
  static Dims d3(std::size_t nx, std::size_t ny, std::size_t nz) {
    return {{nx, ny, nz}, 3};
  }

  std::size_t count() const { return extent[0] * extent[1] * extent[2]; }

  /// True when the extent product wraps 64 bits — only possible for
  /// deserialized dims, which the parsers must reject before count() is
  /// used to size buffers.
  bool count_overflows() const {
    const std::size_t ab = extent[0] * extent[1];
    if (extent[0] != 0 && extent[1] != 0 && ab / extent[1] != extent[0]) {
      return true;
    }
    return ab != 0 && extent[2] != 0 && (ab * extent[2]) / extent[2] != ab;
  }
};

struct Outlier {
  std::uint64_t index;
  float value;
};

struct QuantizedField {
  Dims dims;
  double error_bound = 0.0;  // absolute bound used for quantization
  std::uint32_t radius = 512;
  std::vector<std::uint16_t> codes;    // 0 = outlier, else q + radius
  std::vector<Outlier> outliers;

  std::uint32_t alphabet_size() const { return 2 * radius; }
  double outlier_fraction() const {
    return codes.empty() ? 0.0
                         : static_cast<double>(outliers.size()) /
                               static_cast<double>(codes.size());
  }
};

/// Quantizes `data` with the given ABSOLUTE error bound. The predictor uses
/// reconstructed values, so decompression reproduces the field within the
/// bound exactly.
QuantizedField lorenzo_quantize(std::span<const float> data, const Dims& dims,
                                double abs_error_bound,
                                std::uint32_t radius = 512);

/// Reconstructs the field from quantization codes and outliers.
std::vector<float> lorenzo_reconstruct(const QuantizedField& q);

/// Same reconstruction from externally decoded codes (the decompression
/// pipeline path).
std::vector<float> lorenzo_reconstruct(std::span<const std::uint16_t> codes,
                                       std::span<const Outlier> outliers,
                                       const Dims& dims, double abs_error_bound,
                                       std::uint32_t radius);

/// Streaming 1-D Lorenzo reconstruction: push(code) dequantizes and writes
/// out[i] for consecutive i, carrying only the previous lattice value (the
/// 1-D predictor's whole neighborhood). Outlier records are consumed in
/// index order exactly like the staged path; finish() validates that every
/// element was produced and every outlier used. Arithmetic is identical to
/// lorenzo_reconstruct at rank 1, so the floats match bit for bit.
class Lorenzo1DSink {
 public:
  Lorenzo1DSink(std::span<float> out, std::span<const Outlier> outliers,
                double abs_error_bound, std::uint32_t radius)
      : out_(out),
        outliers_(outliers),
        ebx2_(2.0 * abs_error_bound),
        r_(static_cast<std::int64_t>(radius)) {}

  void operator()(std::uint16_t code) {
    if (i_ >= out_.size()) {
      throw std::invalid_argument("more quant codes than output elements");
    }
    if (code == 0) {
      if (next_outlier_ >= outliers_.size() ||
          outliers_[next_outlier_].index != i_) {
        throw std::invalid_argument("missing outlier record");
      }
      const float v = outliers_[next_outlier_++].value;
      out_[i_] = v;
      lattice_ = std::llround(static_cast<double>(v) / ebx2_);
    } else {
      lattice_ += static_cast<std::int64_t>(code) - r_;
      out_[i_] = static_cast<float>(static_cast<double>(lattice_) * ebx2_);
    }
    ++i_;
  }

  std::size_t produced() const { return i_; }

  void finish() const {
    if (i_ != out_.size()) {
      throw std::invalid_argument("fewer quant codes than output elements");
    }
    if (next_outlier_ != outliers_.size()) {
      throw std::invalid_argument("unused outlier records");
    }
  }

 private:
  std::span<float> out_;
  std::span<const Outlier> outliers_;
  std::size_t next_outlier_ = 0;
  std::size_t i_ = 0;
  std::int64_t lattice_ = 0;
  double ebx2_;
  std::int64_t r_;
};

}  // namespace ohd::sz
