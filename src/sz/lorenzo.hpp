// Prediction + error-bounded quantization, the cuSZ "dual-quant" front end:
// a Lorenzo predictor (1-D/2-D/3-D) over the RECONSTRUCTED field and a linear
// quantizer with a user error bound. Out-of-range predictions become
// outliers stored exactly, as in cuSZ (code 0 is reserved for them).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace ohd::sz {

struct Dims {
  std::array<std::size_t, 3> extent{1, 1, 1};  // x (fastest), y, z
  std::uint32_t rank = 1;

  static Dims d1(std::size_t nx) { return {{nx, 1, 1}, 1}; }
  static Dims d2(std::size_t nx, std::size_t ny) { return {{nx, ny, 1}, 2}; }
  static Dims d3(std::size_t nx, std::size_t ny, std::size_t nz) {
    return {{nx, ny, nz}, 3};
  }

  std::size_t count() const { return extent[0] * extent[1] * extent[2]; }

  /// True when the extent product wraps 64 bits — only possible for
  /// deserialized dims, which the parsers must reject before count() is
  /// used to size buffers.
  bool count_overflows() const {
    const std::size_t ab = extent[0] * extent[1];
    if (extent[0] != 0 && extent[1] != 0 && ab / extent[1] != extent[0]) {
      return true;
    }
    return ab != 0 && extent[2] != 0 && (ab * extent[2]) / extent[2] != ab;
  }
};

struct Outlier {
  std::uint64_t index;
  float value;
};

struct QuantizedField {
  Dims dims;
  double error_bound = 0.0;  // absolute bound used for quantization
  std::uint32_t radius = 512;
  std::vector<std::uint16_t> codes;    // 0 = outlier, else q + radius
  std::vector<Outlier> outliers;

  std::uint32_t alphabet_size() const { return 2 * radius; }
  double outlier_fraction() const {
    return codes.empty() ? 0.0
                         : static_cast<double>(outliers.size()) /
                               static_cast<double>(codes.size());
  }
};

/// Quantizes `data` with the given ABSOLUTE error bound. The predictor uses
/// reconstructed values, so decompression reproduces the field within the
/// bound exactly.
QuantizedField lorenzo_quantize(std::span<const float> data, const Dims& dims,
                                double abs_error_bound,
                                std::uint32_t radius = 512);

/// Reconstructs the field from quantization codes and outliers.
std::vector<float> lorenzo_reconstruct(const QuantizedField& q);

/// Same reconstruction from externally decoded codes (the decompression
/// pipeline path).
std::vector<float> lorenzo_reconstruct(std::span<const std::uint16_t> codes,
                                       std::span<const Outlier> outliers,
                                       const Dims& dims, double abs_error_bound,
                                       std::uint32_t radius);

}  // namespace ohd::sz
