// Quality and size metrics reported by the benchmark harness.
#pragma once

#include <cstdint>
#include <span>

namespace ohd::sz {

struct ErrorStats {
  double max_abs_error = 0.0;
  double psnr_db = 0.0;
  double value_range = 0.0;
};

ErrorStats compute_error_stats(std::span<const float> original,
                               std::span<const float> reconstructed);

/// Compression ratio = original bytes / compressed bytes.
double compression_ratio(std::uint64_t original_bytes,
                         std::uint64_t compressed_bytes);

}  // namespace ohd::sz
