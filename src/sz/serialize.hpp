// Byte-level (de)serialization of full cuSZ-style compressed blobs (header +
// outliers + embedded Huffman stream) — the on-disk/wire format of the
// pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/compressor.hpp"

namespace ohd::sz {

std::vector<std::uint8_t> serialize_blob(const CompressedBlob& blob);

/// Throws std::invalid_argument on truncation or inconsistent metadata.
CompressedBlob deserialize_blob(std::span<const std::uint8_t> bytes);

}  // namespace ohd::sz
