// Byte-level (de)serialization of full cuSZ-style compressed blobs (header +
// outliers + embedded Huffman stream) — the on-disk/wire format of the
// pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sz/compressor.hpp"

namespace ohd::sz {

/// With `embed_codebook == false` the embedded Huffman stream is written
/// without its codebook (container v2 shared-codebook frames); such a blob
/// can only be parsed back with the matching shared codebook.
std::vector<std::uint8_t> serialize_blob(const CompressedBlob& blob,
                                         bool embed_codebook = true);

/// Throws std::invalid_argument on truncation or inconsistent metadata. A
/// frame whose stream omits its codebook resolves it from `shared_codebook`
/// (required for such frames, ignored for self-contained ones).
CompressedBlob deserialize_blob(
    std::span<const std::uint8_t> bytes,
    const huffman::Codebook* shared_codebook = nullptr);

}  // namespace ohd::sz
