#include "sz/serialize.hpp"

#include <stdexcept>

#include "core/serialize.hpp"
#include "util/bytes.hpp"

namespace ohd::sz {

namespace {
constexpr char kMagic[4] = {'O', 'H', 'D', 'Z'};
constexpr std::uint8_t kVersion = 1;

// The wire format below must stay in sync with the size-model constants the
// accounting and the simulated scatter kernel charge per outlier record.
static_assert(kOutlierEntryBytes == sizeof(std::uint64_t) + sizeof(float));
}  // namespace

std::vector<std::uint8_t> serialize_blob(const CompressedBlob& blob,
                                         bool embed_codebook) {
  util::ByteWriter w;
  w.magic(kMagic);
  w.u8(kVersion);
  w.u32(blob.dims.rank);
  for (std::size_t e : blob.dims.extent) w.u64(e);
  w.f64(blob.abs_error_bound);
  w.u32(blob.radius);
  w.u64(blob.outliers.size());
  for (const Outlier& o : blob.outliers) {
    w.u64(o.index);
    w.f32(o.value);
  }
  const auto stream_bytes = core::serialize_stream(blob.encoded, embed_codebook);
  w.bytes(stream_bytes);
  return w.take();
}

CompressedBlob deserialize_blob(std::span<const std::uint8_t> bytes,
                                const huffman::Codebook* shared_codebook) {
  util::ByteReader r(bytes);
  r.expect_magic(kMagic);
  if (r.u8() != kVersion) {
    throw std::invalid_argument("unsupported blob version");
  }
  CompressedBlob blob;
  blob.dims.rank = r.u32();
  if (blob.dims.rank < 1 || blob.dims.rank > 3) {
    throw std::invalid_argument("implausible rank");
  }
  for (std::size_t i = 0; i < blob.dims.extent.size(); ++i) {
    blob.dims.extent[i] = r.u64();
    if (blob.dims.extent[i] == 0 ||
        (i >= blob.dims.rank && blob.dims.extent[i] != 1)) {
      throw std::invalid_argument("implausible extent");
    }
  }
  if (blob.dims.count_overflows()) {
    throw std::invalid_argument("extent product overflows");
  }
  blob.abs_error_bound = r.f64();
  if (!(blob.abs_error_bound > 0.0)) {
    throw std::invalid_argument("non-positive error bound");
  }
  blob.radius = r.u32();
  const std::uint64_t n_outliers = r.u64();
  if (n_outliers > blob.dims.count()) {
    throw std::invalid_argument("more outliers than elements");
  }
  blob.outliers.reserve(n_outliers);
  std::uint64_t prev_index = 0;
  for (std::uint64_t i = 0; i < n_outliers; ++i) {
    Outlier o;
    o.index = r.u64();
    o.value = r.f32();
    if (o.index >= blob.dims.count() || (i > 0 && o.index <= prev_index)) {
      throw std::invalid_argument("outlier indices not strictly increasing");
    }
    prev_index = o.index;
    blob.outliers.push_back(o);
  }
  const auto stream_bytes = r.array<std::uint8_t>();
  blob.encoded = core::deserialize_stream(stream_bytes, shared_codebook);
  if (blob.encoded.num_symbols != blob.dims.count()) {
    throw std::invalid_argument("code count does not match dimensions");
  }
  return blob;
}

}  // namespace ohd::sz
