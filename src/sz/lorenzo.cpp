#include "sz/lorenzo.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace ohd::sz {

namespace {

/// Lorenzo prediction at (x, y, z) from the already-processed neighbors of a
/// raster-order scan, over the integer lattice field `f`.
inline std::int64_t predict(const std::vector<std::int64_t>& f, const Dims& d,
                            std::size_t x, std::size_t y, std::size_t z) {
  const std::size_t nx = d.extent[0];
  const std::size_t ny = d.extent[1];
  const std::size_t sy = nx;
  const std::size_t sz = nx * ny;
  const std::size_t i = x + y * sy + z * sz;
  auto at = [&](std::size_t dx, std::size_t dy, std::size_t dz) {
    return f[i - dx - dy * sy - dz * sz];
  };
  switch (d.rank) {
    case 1:
      return x > 0 ? at(1, 0, 0) : 0;
    case 2: {
      const std::int64_t a = x > 0 ? at(1, 0, 0) : 0;
      const std::int64_t b = y > 0 ? at(0, 1, 0) : 0;
      const std::int64_t c = (x > 0 && y > 0) ? at(1, 1, 0) : 0;
      return a + b - c;
    }
    case 3: {
      const std::int64_t fx = x > 0 ? at(1, 0, 0) : 0;
      const std::int64_t fy = y > 0 ? at(0, 1, 0) : 0;
      const std::int64_t fz = z > 0 ? at(0, 0, 1) : 0;
      const std::int64_t fxy = (x > 0 && y > 0) ? at(1, 1, 0) : 0;
      const std::int64_t fxz = (x > 0 && z > 0) ? at(1, 0, 1) : 0;
      const std::int64_t fyz = (y > 0 && z > 0) ? at(0, 1, 1) : 0;
      const std::int64_t fxyz = (x > 0 && y > 0 && z > 0) ? at(1, 1, 1) : 0;
      return fx + fy + fz - fxy - fxz - fyz + fxyz;
    }
    default:
      throw std::invalid_argument("unsupported rank");
  }
}

}  // namespace

// cuSZ-style DUAL-QUANTIZATION (Tian et al. 2020): first snap every value to
// the error-bound lattice (ival = round(v / 2eb), the only lossy step, error
// <= eb), then predict EXACTLY on the integer lattice. Because prediction is
// exact integer arithmetic there is no reconstruction-noise feedback, which
// is what lets smooth fields quantize to near-constant codes (Nyx-like data
// reaches ~1 bit/code, as in the paper's Table IV).
QuantizedField lorenzo_quantize(std::span<const float> data, const Dims& dims,
                                double abs_error_bound, std::uint32_t radius) {
  if (data.size() != dims.count()) {
    throw std::invalid_argument("data size does not match dims");
  }
  if (abs_error_bound <= 0.0) {
    throw std::invalid_argument("error bound must be positive");
  }
  if (radius < 2 || radius > 32768) {
    throw std::invalid_argument("radius out of range");
  }

  QuantizedField q;
  q.dims = dims;
  q.error_bound = abs_error_bound;
  q.radius = radius;
  q.codes.assign(data.size(), 0);

  const double ebx2 = 2.0 * abs_error_bound;
  const auto r = static_cast<std::int64_t>(radius);

  // Pre-quantization to the lattice.
  std::vector<std::int64_t> lattice(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    lattice[i] = std::llround(static_cast<double>(data[i]) / ebx2);
  }

  std::size_t i = 0;
  for (std::size_t z = 0; z < dims.extent[2]; ++z) {
    for (std::size_t y = 0; y < dims.extent[1]; ++y) {
      for (std::size_t x = 0; x < dims.extent[0]; ++x, ++i) {
        const std::int64_t residual =
            lattice[i] - predict(lattice, dims, x, y, z);
        const float dequant = static_cast<float>(
            static_cast<double>(lattice[i]) * ebx2);
        // The lattice value must reproduce the datum within the bound after
        // the float cast; the rare half-ulp breach becomes an outlier so the
        // bound stays strict.
        const bool representable =
            std::abs(static_cast<double>(data[i]) - dequant) <=
            abs_error_bound;
        if (residual <= -r || residual >= r || !representable) {
          q.codes[i] = 0;
          q.outliers.push_back({static_cast<std::uint64_t>(i), data[i]});
          // Neighbors still predict from this datum's lattice value, exactly
          // as the decompressor will reconstruct it.
          lattice[i] = std::llround(static_cast<double>(data[i]) / ebx2);
        } else {
          q.codes[i] = static_cast<std::uint16_t>(residual + r);
        }
      }
    }
  }
  return q;
}

std::vector<float> lorenzo_reconstruct(std::span<const std::uint16_t> codes,
                                       std::span<const Outlier> outliers,
                                       const Dims& dims,
                                       double abs_error_bound,
                                       std::uint32_t radius) {
  if (codes.size() != dims.count()) {
    throw std::invalid_argument("codes size does not match dims");
  }
  std::vector<float> recon(codes.size(), 0.0f);
  std::vector<std::int64_t> lattice(codes.size(), 0);
  const double ebx2 = 2.0 * abs_error_bound;
  const auto r = static_cast<std::int64_t>(radius);

  std::size_t next_outlier = 0;
  std::size_t i = 0;
  for (std::size_t z = 0; z < dims.extent[2]; ++z) {
    for (std::size_t y = 0; y < dims.extent[1]; ++y) {
      for (std::size_t x = 0; x < dims.extent[0]; ++x, ++i) {
        if (codes[i] == 0) {
          if (next_outlier >= outliers.size() ||
              outliers[next_outlier].index != i) {
            throw std::invalid_argument("missing outlier record");
          }
          recon[i] = outliers[next_outlier++].value;
          lattice[i] =
              std::llround(static_cast<double>(recon[i]) / ebx2);
        } else {
          const std::int64_t residual = static_cast<std::int64_t>(codes[i]) - r;
          lattice[i] = predict(lattice, dims, x, y, z) + residual;
          recon[i] = static_cast<float>(static_cast<double>(lattice[i]) * ebx2);
        }
      }
    }
  }
  if (next_outlier != outliers.size()) {
    throw std::invalid_argument("unused outlier records");
  }
  return recon;
}

std::vector<float> lorenzo_reconstruct(const QuantizedField& q) {
  return lorenzo_reconstruct(q.codes, q.outliers, q.dims, q.error_bound,
                             q.radius);
}

}  // namespace ohd::sz
