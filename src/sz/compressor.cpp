#include "sz/compressor.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/decode_write.hpp"

namespace ohd::sz {

double resolve_error_bound(std::span<const float> data,
                           double rel_error_bound) {
  if (rel_error_bound <= 0.0) {
    throw std::invalid_argument("relative error bound must be positive");
  }
  float lo = data.empty() ? 0.0f : data[0];
  float hi = lo;
  for (float v : data) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  return rel_error_bound * (range > 0.0 ? range : 1.0);
}

CompressedBlob compress(std::span<const float> data, const Dims& dims,
                        const CompressorConfig& config) {
  return compress_with_abs_bound(
      data, dims, resolve_error_bound(data, config.rel_error_bound), config);
}

CompressedBlob compress_with_abs_bound(std::span<const float> data,
                                       const Dims& dims, double abs_error_bound,
                                       const CompressorConfig& config) {
  return encode_quantized(
      quantize_with_abs_bound(data, dims, abs_error_bound, config),
      config.method, config);
}

QuantizedField quantize_with_abs_bound(std::span<const float> data,
                                       const Dims& dims, double abs_error_bound,
                                       const CompressorConfig& config) {
  if (abs_error_bound <= 0.0) {
    throw std::invalid_argument("absolute error bound must be positive");
  }
  if (data.size() != dims.count()) {
    throw std::invalid_argument("data size does not match dimensions");
  }
  return lorenzo_quantize(data, dims, abs_error_bound, config.radius);
}

namespace {

CompressedBlob blob_from_quantized(QuantizedField&& q) {
  CompressedBlob blob;
  blob.dims = q.dims;
  blob.abs_error_bound = q.error_bound;
  blob.radius = q.radius;
  blob.outliers = std::move(q.outliers);
  return blob;
}

}  // namespace

CompressedBlob encode_quantized(QuantizedField&& q, core::Method method,
                                const CompressorConfig& config) {
  const std::uint32_t alphabet = q.alphabet_size();
  const std::vector<std::uint16_t> codes = std::move(q.codes);
  CompressedBlob blob = blob_from_quantized(std::move(q));
  blob.encoded =
      core::encode_for_method(method, codes, alphabet, config.decoder);
  return blob;
}

CompressedBlob encode_quantized(QuantizedField&& q, core::Method method,
                                const CompressorConfig& config,
                                const huffman::Codebook& codebook) {
  const std::vector<std::uint16_t> codes = std::move(q.codes);
  CompressedBlob blob = blob_from_quantized(std::move(q));
  blob.encoded =
      core::encode_with_codebook(method, codes, codebook, config.decoder);
  return blob;
}

namespace {

/// The simulated decompression stages shared by decompress and
/// decompress_into: H2D (optional), Huffman decode, outlier scatter, reverse
/// Lorenzo. Returns the timings (data empty) and the decoded quant codes.
core::DecodeResult run_simulated_stages(cudasim::SimContext& ctx,
                                        const CompressedBlob& blob,
                                        const core::DecoderConfig& decoder_config,
                                        bool simulate_h2d,
                                        DecompressionResult& result) {
  if (blob.encoded.method == core::Method::GapArrayOriginal8Bit) {
    throw std::invalid_argument(
        "the 8-bit gap-array baseline cannot reconstruct multi-byte "
        "quantization codes; it exists for decode benchmarking only");
  }

  if (simulate_h2d) {
    result.h2d_seconds =
        ctx.host_to_device(blob.compressed_bytes(), "h2d_compressed");
  }

  // Stage 1: Huffman decode (the paper's focus).
  core::DecodeResult decoded = core::decode(ctx, blob.encoded, decoder_config);
  result.huffman_phases = decoded.phases;
  result.huffman_seconds = decoded.phases.total();

  // Stage 2: outlier scatter — write the stored exact values back. Sparse
  // uncoalesced writes, one per outlier.
  const std::uint64_t n = blob.dims.count();
  if (!blob.outliers.empty()) {
    const std::uint64_t out_addr = ctx.reserve_address(n * 4);
    const std::uint64_t rec_addr =
        ctx.reserve_address(blob.outliers.size() * kOutlierEntryBytes);
    const std::uint32_t block = 256;
    const std::uint32_t grid = static_cast<std::uint32_t>(
        (blob.outliers.size() + block - 1) / block);
    const auto r = ctx.launch(
        "outlier_scatter", {grid, block, 0}, [&](cudasim::BlockCtx& blk) {
          blk.for_each_thread([&](cudasim::ThreadCtx& t) {
            const std::uint64_t i = blk.global_tid(t);
            if (i >= blob.outliers.size()) return;
            t.global_read(rec_addr + i * kOutlierEntryBytes,
                          static_cast<std::uint32_t>(kOutlierEntryBytes));
            t.global_write(out_addr + blob.outliers[i].index * 4, 4);
            t.charge(4);
          });
        });
    result.outlier_scatter_seconds = r.timing.seconds;
  }

  // Stage 3: reverse Lorenzo — a partial-sum scan kernel streaming the codes
  // and producing the reconstructed field (functionally executed on the
  // host; charged as the coalesced streaming kernel cuSZ runs).
  {
    const std::uint64_t codes_addr = ctx.reserve_address(n * 2);
    const std::uint64_t out_addr = ctx.reserve_address(n * 4);
    const std::uint32_t block = 256;
    const std::uint32_t grid =
        static_cast<std::uint32_t>((n + block - 1) / block);
    const auto r = ctx.launch(
        "reverse_lorenzo", {grid, block, 0}, [&](cudasim::BlockCtx& blk) {
          blk.for_each_thread([&](cudasim::ThreadCtx& t) {
            const std::uint64_t i = blk.global_tid(t);
            if (i >= n) return;
            t.global_read(codes_addr + i * 2, 2);
            t.global_write(out_addr + i * 4, 4);
            t.charge(10);
          });
        });
    result.reverse_lorenzo_seconds = r.timing.seconds;
  }
  return decoded;
}

/// The fused write path applies when the blob is 1-D (the streaming sink
/// carries the whole predictor neighborhood in one register) and the config
/// has not opted out.
bool fused_write_applies(const CompressedBlob& blob,
                         const core::DecoderConfig& decoder_config) {
  return decoder_config.use_fused_write && blob.dims.rank == 1;
}

}  // namespace

DecompressionResult decompress(cudasim::SimContext& ctx,
                               const CompressedBlob& blob,
                               const core::DecoderConfig& decoder_config,
                               bool simulate_h2d) {
  DecompressionResult result;
  const core::DecodeResult decoded =
      run_simulated_stages(ctx, blob, decoder_config, simulate_h2d, result);
  if (fused_write_applies(blob, decoder_config)) {
    // Fused write: one pass over the decoded codes, dequantize + 1-D
    // Lorenzo straight into the result buffer (no int64 lattice vector).
    result.data.resize(blob.dims.count());
    Lorenzo1DSink sink(result.data, blob.outliers, blob.abs_error_bound,
                       blob.radius);
    for (const std::uint16_t code : decoded.symbols) sink(code);
    sink.finish();
  } else {
    result.data = lorenzo_reconstruct(decoded.symbols, blob.outliers,
                                      blob.dims, blob.abs_error_bound,
                                      blob.radius);
  }
  return result;
}

DecompressionResult decompress_into(cudasim::SimContext& ctx,
                                    const CompressedBlob& blob,
                                    std::span<float> out,
                                    const core::DecoderConfig& decoder_config,
                                    bool simulate_h2d) {
  if (out.size() != blob.dims.count()) {
    throw std::invalid_argument(
        "destination size does not match blob dimensions");
  }
  DecompressionResult result;
  const core::DecodeResult decoded =
      run_simulated_stages(ctx, blob, decoder_config, simulate_h2d, result);
  if (fused_write_applies(blob, decoder_config)) {
    Lorenzo1DSink sink(out, blob.outliers, blob.abs_error_bound, blob.radius);
    for (const std::uint16_t code : decoded.symbols) sink(code);
    sink.finish();
  } else {
    const std::vector<float> recon =
        lorenzo_reconstruct(decoded.symbols, blob.outliers, blob.dims,
                            blob.abs_error_bound, blob.radius);
    std::copy(recon.begin(), recon.end(), out.begin());
  }
  return result;
}

void fused_decode_reconstruct(const CompressedBlob& blob,
                              std::span<float> out) {
  if (blob.dims.rank != 1) {
    throw std::invalid_argument(
        "the fused decode-write sink is 1-D only; rank-2/3 blobs need the "
        "staged reconstruct");
  }
  if (out.size() != blob.dims.count()) {
    throw std::invalid_argument(
        "destination size does not match blob dimensions");
  }
  if (blob.encoded.method == core::Method::GapArrayOriginal8Bit) {
    throw std::invalid_argument(
        "the 8-bit gap-array baseline cannot reconstruct multi-byte "
        "quantization codes; it exists for decode benchmarking only");
  }
  Lorenzo1DSink sink(out, blob.outliers, blob.abs_error_bound, blob.radius);
  core::host_decode_symbols(blob.encoded,
                            [&sink](std::uint16_t code) { sink(code); });
  sink.finish();
}

}  // namespace ohd::sz
