// The three Huffman encoders used in the evaluation:
//
//  * encode_plain   — a single dense bitstream; input for the
//                     self-synchronization decoder (no encoder cooperation).
//  * encode_gap     — the same dense bitstream plus Yamamoto et al.'s gap
//                     array: one byte per subsequence giving the bit offset
//                     of the first codeword starting at or after the
//                     subsequence boundary (encoder/decoder coupling).
//  * encode_chunked — cuSZ's baseline layout: fixed-symbol-count chunks, each
//                     padded to a unit boundary, decoded coarsely one thread
//                     per chunk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "huffman/codebook.hpp"

namespace ohd::huffman {

/// Bitstream geometry shared by the fine-grained decoders (W&S layout): a
/// SUBSEQUENCE is `units_per_subseq` 32-bit units handled by one thread; a
/// SEQUENCE is `subseqs_per_seq` subsequences handled by one block.
struct StreamGeometry {
  std::uint32_t units_per_subseq = 4;  // 128 bits, as in the paper
  std::uint32_t subseqs_per_seq = 128; // threads per block, as in the paper

  std::uint64_t subseq_bits() const {
    return static_cast<std::uint64_t>(units_per_subseq) * 32;
  }
  std::uint64_t seq_bits() const { return subseq_bits() * subseqs_per_seq; }
};

struct StreamEncoding {
  std::vector<std::uint32_t> units;  // padded to a whole number of sequences
  std::uint64_t total_bits = 0;      // valid codeword bits (before padding)
  std::uint64_t num_symbols = 0;
  StreamGeometry geometry;

  std::uint32_t num_subseqs() const {
    return static_cast<std::uint32_t>(
        (total_bits + geometry.subseq_bits() - 1) / geometry.subseq_bits());
  }
  std::uint32_t num_seqs() const {
    return (num_subseqs() + geometry.subseqs_per_seq - 1) /
           geometry.subseqs_per_seq;
  }
  std::uint64_t payload_bytes() const { return units.size() * 4; }
};

StreamEncoding encode_plain(std::span<const std::uint16_t> data,
                            const Codebook& cb,
                            StreamGeometry geometry = {});

struct GapEncoding {
  StreamEncoding stream;
  /// gaps[i] = bit offset (0..255) from subsequence boundary i to the first
  /// codeword starting at or after it; if no codeword starts in subsequence
  /// i, the offset points just past the last valid bit.
  std::vector<std::uint8_t> gaps;

  std::uint64_t payload_bytes() const {
    return stream.payload_bytes() + gaps.size();
  }
};

GapEncoding encode_gap(std::span<const std::uint16_t> data, const Codebook& cb,
                       StreamGeometry geometry = {});

struct ChunkedEncoding {
  std::vector<std::uint32_t> units;            // chunks back to back
  std::vector<std::uint64_t> chunk_bit_offset; // unit-aligned start of chunk
  std::vector<std::uint32_t> chunk_num_symbols;
  std::uint64_t num_symbols = 0;
  std::uint32_t chunk_symbols = 0;
  std::uint64_t total_bits = 0;  // including per-chunk alignment padding

  std::uint32_t num_chunks() const {
    return static_cast<std::uint32_t>(chunk_bit_offset.size());
  }
  std::uint64_t payload_bytes() const {
    // Stream plus the per-chunk offset metadata cuSZ stores.
    return units.size() * 4 + chunk_bit_offset.size() * 8;
  }
};

ChunkedEncoding encode_chunked(std::span<const std::uint16_t> data,
                               const Codebook& cb,
                               std::uint32_t chunk_symbols = 1024);

/// Reference sequential decoder (ground truth for tests): decodes
/// `num_symbols` codewords from a plain stream.
std::vector<std::uint16_t> decode_sequential(const StreamEncoding& enc,
                                             const Codebook& cb);

}  // namespace ohd::huffman
