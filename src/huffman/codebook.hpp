// Huffman codebook construction and canonical code tables.
//
// All decoders in this repository decode *canonical* Huffman codes via the
// first-code method, so a single codeword layout serves the cuSZ baseline,
// the self-synchronization decoder, and the gap-array decoder, keeping phase
// comparisons apples-to-apples (paper §IV).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "huffman/decode_table.hpp"

namespace ohd::huffman {

/// Maximum codeword length supported by the decoders. cuSZ caps codeword
/// length so a codeword always fits one 32-bit unit with room to spare; we
/// use 24 bits and rebuild with flattened frequencies if the tree exceeds it.
inline constexpr std::uint32_t kMaxCodeLen = 24;

struct Codeword {
  std::uint32_t bits = 0;  // right-aligned codeword value
  std::uint8_t len = 0;    // 0 => symbol does not occur
};

/// Frequency histogram of a u16 symbol stream over [0, num_symbols).
std::vector<std::uint64_t> symbol_histogram(std::span<const std::uint16_t> data,
                                            std::uint32_t num_symbols);

/// Computes optimal prefix-free code lengths (Huffman's algorithm) from
/// frequencies. Lengths are capped at kMaxCodeLen by iteratively halving
/// frequencies and rebuilding (the standard practical fix; optimality loss is
/// negligible for the capped tail). Symbols with zero frequency get length 0.
std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs);

/// Canonical Huffman codebook: encode table plus the decode tables used by
/// every decoder's per-codeword step.
class Codebook {
public:
  /// Builds the canonical codebook from per-symbol code lengths.
  static Codebook from_lengths(std::span<const std::uint8_t> lengths);

  /// Convenience: histogram + length computation + canonical assignment.
  static Codebook from_data(std::span<const std::uint16_t> data,
                            std::uint32_t num_symbols);

  std::uint32_t alphabet_size() const {
    return static_cast<std::uint32_t>(encode_.size());
  }
  const Codeword& code(std::uint16_t symbol) const { return encode_[symbol]; }
  std::span<const Codeword> encode_table() const { return encode_; }

  /// Canonical decode tables (first-code method):
  ///   first_code[l] — the smallest codeword value of length l;
  ///   count[l]      — how many codewords have length l;
  ///   offset[l]     — index into symbols_by_code of the first such symbol.
  /// Decoding accumulates bits into `code`; at length l the codeword is valid
  /// iff code - first_code[l] < count[l].
  std::span<const std::uint32_t> first_code() const { return first_code_; }
  std::span<const std::uint32_t> count() const { return count_; }
  std::span<const std::uint32_t> offset() const { return offset_; }
  std::span<const std::uint16_t> symbols_by_code() const {
    return symbols_by_code_;
  }
  std::uint32_t max_len() const { return max_len_; }

  /// Flat LUT over the next kDefaultIndexBits stream bits, built once at
  /// construction; the fast path of every decoder (see decode_one_lut).
  /// Codewords longer than the index width fall back to the tables above.
  const DecodeTable& decode_table() const { return decode_table_; }

  /// Average codeword length weighted by `freqs` (bits/symbol); used by
  /// benches to report expected compression ratios.
  double expected_bits_per_symbol(std::span<const std::uint64_t> freqs) const;

  /// Serialized size in bytes when stored in a compressed blob (one length
  /// byte per symbol; canonical codes are reproducible from lengths alone).
  std::uint64_t serialized_bytes() const { return encode_.size() + 8; }

  /// Serialize / reconstruct (format: u32 alphabet size, then length bytes).
  std::vector<std::uint8_t> serialize() const;
  static Codebook deserialize(std::span<const std::uint8_t> bytes);

private:
  std::vector<Codeword> encode_;
  std::vector<std::uint32_t> first_code_;   // indexed by length 0..max_len
  std::vector<std::uint32_t> count_;        // indexed by length
  std::vector<std::uint32_t> offset_;       // indexed by length
  std::vector<std::uint16_t> symbols_by_code_;
  std::uint32_t max_len_ = 0;
  DecodeTable decode_table_;
};

}  // namespace ohd::huffman
