#include "huffman/encoder.hpp"

#include <cassert>
#include <stdexcept>

#include "bitio/bit_reader.hpp"
#include "bitio/bit_writer.hpp"
#include "huffman/decode_step.hpp"

namespace ohd::huffman {

namespace {

void append_symbols(bitio::BitWriter& writer,
                    std::span<const std::uint16_t> data, const Codebook& cb) {
  for (std::uint16_t s : data) {
    const Codeword& c = cb.code(s);
    if (c.len == 0) {
      throw std::invalid_argument("symbol has no codeword (zero frequency)");
    }
    writer.put(c.bits, c.len);
  }
}

}  // namespace

StreamEncoding encode_plain(std::span<const std::uint16_t> data,
                            const Codebook& cb, StreamGeometry geometry) {
  bitio::BitWriter writer;
  append_symbols(writer, data, cb);
  StreamEncoding enc;
  enc.total_bits = writer.bit_count();
  enc.num_symbols = data.size();
  enc.geometry = geometry;
  writer.pad_to(geometry.seq_bits());
  enc.units = writer.finish();
  return enc;
}

GapEncoding encode_gap(std::span<const std::uint16_t> data, const Codebook& cb,
                       StreamGeometry geometry) {
  GapEncoding out;
  bitio::BitWriter writer;
  const std::uint64_t subseq_bits = geometry.subseq_bits();

  // Gap computation relies on max code length < subsequence size so that at
  // most one boundary lies between consecutive codeword starts.
  assert(kMaxCodeLen < subseq_bits);

  std::uint64_t next_boundary = 0;  // subsequence index whose gap is pending
  for (std::uint16_t s : data) {
    const Codeword& c = cb.code(s);
    if (c.len == 0) {
      throw std::invalid_argument("symbol has no codeword (zero frequency)");
    }
    const std::uint64_t start = writer.bit_count();
    while (next_boundary * subseq_bits <= start) {
      const std::uint64_t gap = start - next_boundary * subseq_bits;
      assert(gap < 256);
      out.gaps.push_back(static_cast<std::uint8_t>(gap));
      ++next_boundary;
    }
    writer.put(c.bits, c.len);
  }

  out.stream.total_bits = writer.bit_count();
  out.stream.num_symbols = data.size();
  out.stream.geometry = geometry;

  // Boundaries inside the final partial subsequence (or exactly at the end of
  // the last codeword) have no codeword starting after them: point the gap
  // just past the last valid bit so their threads decode nothing.
  const std::uint64_t num_subseqs =
      (out.stream.total_bits + subseq_bits - 1) / subseq_bits;
  while (next_boundary < num_subseqs) {
    const std::uint64_t gap =
        out.stream.total_bits - next_boundary * subseq_bits;
    assert(gap < 256);
    out.gaps.push_back(static_cast<std::uint8_t>(gap));
    ++next_boundary;
  }

  writer.pad_to(geometry.seq_bits());
  out.stream.units = writer.finish();
  return out;
}

ChunkedEncoding encode_chunked(std::span<const std::uint16_t> data,
                               const Codebook& cb,
                               std::uint32_t chunk_symbols) {
  if (chunk_symbols == 0) {
    throw std::invalid_argument("chunk_symbols must be positive");
  }
  ChunkedEncoding enc;
  enc.chunk_symbols = chunk_symbols;
  enc.num_symbols = data.size();

  bitio::BitWriter writer;
  for (std::size_t begin = 0; begin < data.size(); begin += chunk_symbols) {
    const std::size_t end = std::min(data.size(), begin + chunk_symbols);
    enc.chunk_bit_offset.push_back(writer.bit_count());
    enc.chunk_num_symbols.push_back(static_cast<std::uint32_t>(end - begin));
    append_symbols(writer, data.subspan(begin, end - begin), cb);
    writer.pad_to(32);  // cuSZ chunks are unit-aligned
  }
  enc.total_bits = writer.bit_count();
  enc.units = writer.finish();
  return enc;
}

std::vector<std::uint16_t> decode_sequential(const StreamEncoding& enc,
                                             const Codebook& cb) {
  std::vector<std::uint16_t> out;
  out.reserve(enc.num_symbols);
  bitio::BitReader reader(enc.units, enc.total_bits);
  while (out.size() < enc.num_symbols) {
    const DecodedSymbol d = decode_one(reader, cb);
    if (!d.valid) {
      throw std::runtime_error("sequential decode hit an unassigned prefix");
    }
    out.push_back(d.symbol);
  }
  return out;
}

}  // namespace ohd::huffman
