#include "huffman/codebook.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <queue>
#include <stdexcept>

namespace ohd::huffman {

std::vector<std::uint64_t> symbol_histogram(std::span<const std::uint16_t> data,
                                            std::uint32_t num_symbols) {
  std::vector<std::uint64_t> freqs(num_symbols, 0);
  for (std::uint16_t s : data) {
    if (s < num_symbols) {
      ++freqs[s];
    } else {
      throw std::out_of_range("symbol exceeds alphabet size");
    }
  }
  return freqs;
}

namespace {

/// One round of Huffman's algorithm; returns per-symbol depths.
std::vector<std::uint8_t> build_depths(std::span<const std::uint64_t> freqs) {
  struct Node {
    std::uint64_t freq;
    std::uint32_t order;  // tie-break for determinism
    std::int32_t left;    // child node indices, -1 for leaves
    std::int32_t right;
    std::int32_t symbol;  // leaf symbol, -1 for internal
  };
  std::vector<Node> nodes;
  nodes.reserve(freqs.size() * 2);
  using HeapItem = std::pair<std::uint64_t, std::uint32_t>;  // (freq, node)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) continue;
    const auto idx = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back({freqs[s], idx, -1, -1, static_cast<std::int32_t>(s)});
    heap.emplace(freqs[s], idx);
  }

  std::vector<std::uint8_t> depths(freqs.size(), 0);
  if (nodes.empty()) return depths;
  if (nodes.size() == 1) {
    // Degenerate single-symbol alphabet: emit a 1-bit code so the stream is
    // still self-delimiting.
    depths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return depths;
  }

  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    const auto idx = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back({fa + fb, idx, static_cast<std::int32_t>(a),
                     static_cast<std::int32_t>(b), -1});
    heap.emplace(fa + fb, idx);
  }

  // Depth-first traversal assigning depths.
  struct Frame {
    std::uint32_t node;
    std::uint8_t depth;
  };
  std::vector<Frame> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes[f.node];
    if (n.symbol >= 0) {
      depths[static_cast<std::size_t>(n.symbol)] = f.depth;
      continue;
    }
    stack.push_back({static_cast<std::uint32_t>(n.left),
                     static_cast<std::uint8_t>(f.depth + 1)});
    stack.push_back({static_cast<std::uint32_t>(n.right),
                     static_cast<std::uint8_t>(f.depth + 1)});
  }
  return depths;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs) {
  std::vector<std::uint64_t> working(freqs.begin(), freqs.end());
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<std::uint8_t> depths = build_depths(working);
    const std::uint8_t max_depth =
        depths.empty() ? 0 : *std::max_element(depths.begin(), depths.end());
    if (max_depth <= kMaxCodeLen) return depths;
    // Flatten: halving (with a floor of 1 for occurring symbols) compresses
    // the dynamic range of frequencies, which shortens the deepest leaves.
    for (std::size_t s = 0; s < working.size(); ++s) {
      if (working[s] > 0) working[s] = (working[s] + 1) / 2;
    }
  }
  throw std::runtime_error("huffman_code_lengths failed to satisfy length cap");
}

Codebook Codebook::from_lengths(std::span<const std::uint8_t> lengths) {
  Codebook cb;
  cb.encode_.assign(lengths.size(), Codeword{});
  cb.max_len_ = 0;
  for (std::uint8_t l : lengths) {
    cb.max_len_ = std::max<std::uint32_t>(cb.max_len_, l);
  }
  if (cb.max_len_ > kMaxCodeLen) {
    throw std::invalid_argument("code length exceeds kMaxCodeLen");
  }

  cb.count_.assign(cb.max_len_ + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l > 0) ++cb.count_[l];
  }

  // Canonical first codes: codes of each length are consecutive, and
  // first_code[l] = (first_code[l-1] + count[l-1]) << 1.
  cb.first_code_.assign(cb.max_len_ + 1, 0);
  cb.offset_.assign(cb.max_len_ + 1, 0);
  std::uint32_t code = 0;
  std::uint32_t offset = 0;
  for (std::uint32_t l = 1; l <= cb.max_len_; ++l) {
    code = (code + (l > 1 ? cb.count_[l - 1] : 0)) << 1;
    if (l == 1) code = 0;
    cb.first_code_[l] = code;
    cb.offset_[l] = offset;
    offset += cb.count_[l];
  }

  // Assign codewords to symbols in (length, symbol) order — the canonical
  // ordering — and build the code->symbol table.
  cb.symbols_by_code_.assign(offset, 0);
  std::vector<std::uint32_t> next_code(cb.first_code_);
  std::vector<std::uint32_t> next_slot(cb.offset_);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const std::uint8_t l = lengths[s];
    if (l == 0) continue;
    cb.encode_[s].bits = next_code[l]++;
    cb.encode_[s].len = l;
    cb.symbols_by_code_[next_slot[l]++] = static_cast<std::uint16_t>(s);
  }

  // Sanity: the code space must not be oversubscribed (Kraft inequality).
  std::uint64_t kraft = 0;
  for (std::uint32_t l = 1; l <= cb.max_len_; ++l) {
    kraft += static_cast<std::uint64_t>(cb.count_[l])
             << (kMaxCodeLen - l);
  }
  if (kraft > (1ull << kMaxCodeLen)) {
    throw std::invalid_argument("code lengths violate Kraft inequality");
  }

  cb.decode_table_ = DecodeTable(cb);
  return cb;
}

Codebook Codebook::from_data(std::span<const std::uint16_t> data,
                             std::uint32_t num_symbols) {
  const auto freqs = symbol_histogram(data, num_symbols);
  return from_lengths(huffman_code_lengths(freqs));
}

double Codebook::expected_bits_per_symbol(
    std::span<const std::uint64_t> freqs) const {
  std::uint64_t total = 0;
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < freqs.size() && s < encode_.size(); ++s) {
    total += freqs[s];
    bits += freqs[s] * encode_[s].len;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(bits) / static_cast<double>(total);
}

std::vector<std::uint8_t> Codebook::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(4 + encode_.size());
  const std::uint32_t n = alphabet_size();
  out.push_back(static_cast<std::uint8_t>(n & 0xFF));
  out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((n >> 24) & 0xFF));
  for (const Codeword& c : encode_) out.push_back(c.len);
  return out;
}

Codebook Codebook::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) throw std::invalid_argument("truncated codebook");
  const std::uint32_t n = static_cast<std::uint32_t>(bytes[0]) |
                          (static_cast<std::uint32_t>(bytes[1]) << 8) |
                          (static_cast<std::uint32_t>(bytes[2]) << 16) |
                          (static_cast<std::uint32_t>(bytes[3]) << 24);
  if (bytes.size() < 4 + n) throw std::invalid_argument("truncated codebook");
  std::vector<std::uint8_t> lengths(bytes.begin() + 4, bytes.begin() + 4 + n);
  return from_lengths(lengths);
}

}  // namespace ohd::huffman
