// The single-codeword decode step shared by every decoder in this repository
// (naive cuSZ, self-synchronization, gap-array). Canonical first-code
// decoding: accumulate bits MSB-first; at length l the accumulated value is a
// valid codeword iff code - first_code[l] < count[l].
#pragma once

#include <cstdint>

#include "bitio/bit_reader.hpp"
#include "huffman/codebook.hpp"

namespace ohd::huffman {

struct DecodedSymbol {
  std::uint16_t symbol = 0;
  std::uint8_t len = 0;  // bits consumed
  bool valid = false;
};

/// Decodes one codeword starting at the reader's current position. Always
/// consumes at least one bit; on an unassigned prefix (possible only for
/// incomplete codes, e.g. a single-symbol alphabet, or when decoding
/// desynchronized garbage) consumes max_len bits and returns valid=false.
inline DecodedSymbol decode_one(bitio::BitReader& reader, const Codebook& cb) {
  std::uint32_t code = 0;
  const std::uint32_t max_len = cb.max_len();
  const auto first_code = cb.first_code();
  const auto count = cb.count();
  const auto offset = cb.offset();
  const auto symbols = cb.symbols_by_code();
  for (std::uint32_t l = 1; l <= max_len; ++l) {
    code = (code << 1) | reader.get_bit();
    const std::uint32_t fc = first_code[l];
    if (code >= fc && code - fc < count[l]) {
      DecodedSymbol out;
      out.symbol = symbols[offset[l] + (code - fc)];
      out.len = static_cast<std::uint8_t>(l);
      out.valid = true;
      return out;
    }
  }
  DecodedSymbol out;
  out.len = static_cast<std::uint8_t>(max_len == 0 ? 1 : max_len);
  out.valid = false;
  return out;
}

}  // namespace ohd::huffman
