// The per-codeword decode step shared by every decoder in this repository
// (naive cuSZ, self-synchronization, gap-array), in three interchangeable
// implementations with identical bit-consumption semantics:
//
//  * decode_one     — canonical first-code decoding: accumulate bits
//                     MSB-first; at length l the accumulated value is a valid
//                     codeword iff code - first_code[l] < count[l]. Up to
//                     max_len dependent iterations per symbol.
//  * decode_one_lut — flat-LUT fast path: peek the next K = index_bits()
//                     stream bits, resolve codewords of length <= K with ONE
//                     table read, and finish longer codewords (or unassigned
//                     prefixes) on the first-code ladder starting from the K
//                     bits already examined.
//  * decode_multi   — multi-symbol LUT fast path: one probe retires EVERY
//                     complete codeword the K-bit window holds (up to
//                     DecodeTable::kMaxMultiSymbols), falling back to the
//                     single-symbol step when the window's first codeword is
//                     long or unassigned. Retires the exact symbol/bit
//                     sequence that repeated decode_one calls would.
//
// All paths always consume at least one bit, consume exactly `len` bits for
// a valid codeword, and consume max_len bits reporting invalid on an
// unassigned prefix (possible only for incomplete codes, e.g. a
// single-symbol alphabet, or when decoding desynchronized garbage) — the
// equivalence is locked in by tests/huffman/decode_table_test.cpp and the
// property suites.
#pragma once

#include <cstdint>

#include "bitio/bit_reader.hpp"
#include "huffman/codebook.hpp"
#include "huffman/decode_table.hpp"

namespace ohd::huffman {

struct DecodedSymbol {
  std::uint16_t symbol = 0;
  std::uint8_t len = 0;  // bits consumed
  bool valid = false;
};

/// Decodes one codeword starting at the reader's current position, bit by
/// bit (the legacy path; see file comment for semantics).
inline DecodedSymbol decode_one(bitio::BitReader& reader, const Codebook& cb) {
  std::uint32_t code = 0;
  const std::uint32_t max_len = cb.max_len();
  const auto first_code = cb.first_code();
  const auto count = cb.count();
  const auto offset = cb.offset();
  const auto symbols = cb.symbols_by_code();
  for (std::uint32_t l = 1; l <= max_len; ++l) {
    code = (code << 1) | reader.get_bit();
    const std::uint32_t fc = first_code[l];
    if (code >= fc && code - fc < count[l]) {
      DecodedSymbol out;
      out.symbol = symbols[offset[l] + (code - fc)];
      out.len = static_cast<std::uint8_t>(l);
      out.valid = true;
      return out;
    }
  }
  DecodedSymbol out;
  out.len = static_cast<std::uint8_t>(max_len == 0 ? 1 : max_len);
  out.valid = false;
  if (max_len == 0) reader.skip(1);
  return out;
}

namespace detail {

/// Cold path of decode_one_lut: the empty-codebook case and the fallback
/// ladder for codewords longer than the table's index width. Out of the hot
/// path so the common single-probe decode inlines tight.
[[gnu::noinline]] inline DecodedSymbol decode_one_lut_slow(
    bitio::BitReader& reader, const Codebook& cb, std::uint32_t k,
    std::uint32_t window) {
  const std::uint32_t max_len = cb.max_len();
  if (max_len == 0) {
    // Empty codebook: mirror decode_one (consume one bit, report invalid).
    reader.skip(1);
    DecodedSymbol out;
    out.len = 1;
    return out;
  }

  // Fallback ladder: no codeword of length <= k prefixes the window, so
  // continue the first-code walk from length k+1 with the window as the
  // accumulated code.
  reader.skip(k);
  std::uint32_t code = window;
  const auto first_code = cb.first_code();
  const auto count = cb.count();
  const auto offset = cb.offset();
  const auto symbols = cb.symbols_by_code();
  for (std::uint32_t l = k + 1; l <= max_len; ++l) {
    code = (code << 1) | reader.get_bit();
    const std::uint32_t fc = first_code[l];
    if (code >= fc && code - fc < count[l]) {
      DecodedSymbol out;
      out.symbol = symbols[offset[l] + (code - fc)];
      out.len = static_cast<std::uint8_t>(l);
      out.valid = true;
      return out;
    }
  }
  // Unassigned prefix: match decode_one's contract of consuming max_len
  // bits in total (k already skipped, max_len - k in the loop above when
  // k < max_len).
  DecodedSymbol out;
  out.len = static_cast<std::uint8_t>(max_len);
  out.valid = false;
  return out;
}

}  // namespace detail

/// Decodes one codeword through `table` (must be built for `cb`); falls back
/// to the first-code ladder for codewords longer than the index width.
inline DecodedSymbol decode_one_lut(bitio::BitReader& reader,
                                    const Codebook& cb,
                                    const DecodeTable& table) {
  const std::uint32_t k = table.index_bits();
  if (k != 0) [[likely]] {  // empty table <=> empty codebook
    const std::uint32_t window = reader.peek(k);
    const DecodeTable::Entry e = table.entry(window);
    if (e.len != 0) [[likely]] {
      reader.skip(e.len);
      DecodedSymbol out;
      out.symbol = e.symbol;
      out.len = e.len;
      out.valid = true;
      return out;
    }
    return detail::decode_one_lut_slow(reader, cb, k, window);
  }
  return detail::decode_one_lut_slow(reader, cb, 0, 0);
}

/// Result of one multi-symbol probe: `count` decoded symbols consuming
/// `bits` stream bits in total. count == 0 with bits > 0 marks an unassigned
/// prefix (bits consumed, nothing emitted), exactly like an invalid
/// DecodedSymbol. `fallback` is true when the probe could not pack (first
/// codeword longer than the index width, unassigned prefix, or empty
/// codebook) and the result came from the single-symbol path instead.
struct DecodedBatch {
  std::uint16_t symbols[DecodeTable::kMaxMultiSymbols] = {0, 0, 0};
  std::uint8_t count = 0;
  std::uint8_t bits = 0;
  bool fallback = false;
};

/// Decodes up to DecodeTable::kMaxMultiSymbols codewords in one probe of
/// `table` (must be built for `cb`). The emitted symbols and consumed bits
/// are exactly what `count` repeated decode_one calls would produce, so
/// multi-symbol decoding is a drop-in for the single-symbol loop anywhere
/// the caller can accept up to kMaxMultiSymbols symbols at once.
inline DecodedBatch decode_multi(bitio::BitReader& reader, const Codebook& cb,
                                 const DecodeTable& table) {
  DecodedBatch out;
  const std::uint32_t k = table.index_bits();
  if (k != 0) [[likely]] {  // empty table <=> empty codebook
    const std::uint32_t window = reader.peek(k);
    const DecodeTable::MultiEntry& m = table.multi_entry(window);
    if (m.count != 0) [[likely]] {
      reader.skip(m.bits);
      for (std::uint32_t i = 0; i < DecodeTable::kMaxMultiSymbols; ++i) {
        out.symbols[i] = m.symbols[i];
      }
      out.count = m.count;
      out.bits = m.bits;
      return out;
    }
  }
  // First codeword long/unassigned (or empty codebook): one slow symbol.
  const DecodedSymbol d = decode_one_lut(reader, cb, table);
  out.fallback = true;
  out.bits = d.len;
  if (d.valid) {
    out.symbols[0] = d.symbol;
    out.count = 1;
  }
  return out;
}

}  // namespace ohd::huffman
