#include "huffman/length_limited.hpp"

#include <algorithm>
#include <stdexcept>

namespace ohd::huffman {

std::uint64_t weighted_length(std::span<const std::uint64_t> freqs,
                              std::span<const std::uint8_t> lengths) {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < freqs.size() && s < lengths.size(); ++s) {
    total += freqs[s] * lengths[s];
  }
  return total;
}

std::vector<std::uint8_t> package_merge_lengths(
    std::span<const std::uint64_t> freqs, std::uint32_t max_len) {
  struct Item {
    std::uint64_t freq;
    std::uint32_t symbol;
  };
  std::vector<Item> items;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] > 0) {
      items.push_back({freqs[s], static_cast<std::uint32_t>(s)});
    }
  }
  std::vector<std::uint8_t> lengths(freqs.size(), 0);
  if (items.empty()) return lengths;
  if (items.size() == 1) {
    lengths[items[0].symbol] = 1;
    return lengths;
  }
  const std::size_t n = items.size();
  if (max_len >= 64 || (max_len < 63 && (1ull << max_len) < n)) {
    if (max_len >= 64 || (1ull << max_len) < n) {
      throw std::invalid_argument("max_len cannot accommodate alphabet");
    }
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.freq < b.freq; });

  // Nodes across all levels. A node is either a leaf (original item) or a
  // package of two nodes from the level below.
  struct Node {
    std::uint64_t weight;
    std::int32_t left = -1;   // node indices for packages, -1 for leaves
    std::int32_t right = -1;
    std::int32_t item = -1;   // index into `items` for leaves
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * n * max_len);

  auto make_leaf_list = [&]() {
    std::vector<std::int32_t> list;
    list.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back({items[i].freq, -1, -1, static_cast<std::int32_t>(i)});
      list.push_back(static_cast<std::int32_t>(nodes.size() - 1));
    }
    return list;
  };

  // Level max_len holds only leaves; each shallower level merges fresh
  // leaves with packages of the level below.
  std::vector<std::int32_t> prev = make_leaf_list();
  for (std::uint32_t level = 1; level < max_len; ++level) {
    std::vector<std::int32_t> packages;
    packages.reserve(prev.size() / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      nodes.push_back({nodes[prev[i]].weight + nodes[prev[i + 1]].weight,
                       prev[i], prev[i + 1], -1});
      packages.push_back(static_cast<std::int32_t>(nodes.size() - 1));
    }
    const std::vector<std::int32_t> leaves = make_leaf_list();
    std::vector<std::int32_t> merged;
    merged.reserve(leaves.size() + packages.size());
    std::merge(leaves.begin(), leaves.end(), packages.begin(), packages.end(),
               std::back_inserter(merged),
               [&](std::int32_t a, std::int32_t b) {
                 return nodes[a].weight < nodes[b].weight;
               });
    prev = std::move(merged);
  }

  // The optimal solution takes the 2n-2 cheapest nodes of the final list;
  // each time a leaf appears, its symbol's code deepens by one.
  std::vector<std::uint32_t> depth(n, 0);
  const std::size_t take = 2 * n - 2;
  if (prev.size() < take) {
    throw std::invalid_argument("max_len cannot accommodate alphabet");
  }
  std::vector<std::int32_t> stack;
  for (std::size_t i = 0; i < take; ++i) {
    stack.push_back(prev[i]);
    while (!stack.empty()) {
      const Node& node = nodes[stack.back()];
      stack.pop_back();
      if (node.item >= 0) {
        ++depth[static_cast<std::size_t>(node.item)];
      } else {
        stack.push_back(node.left);
        stack.push_back(node.right);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (depth[i] == 0 || depth[i] > max_len) {
      throw std::logic_error("package-merge produced an invalid depth");
    }
    lengths[items[i].symbol] = static_cast<std::uint8_t>(depth[i]);
  }
  return lengths;
}

}  // namespace ohd::huffman
