#include "huffman/decode_table.hpp"

#include <algorithm>

#include "huffman/codebook.hpp"

namespace ohd::huffman {

DecodeTable::DecodeTable(const Codebook& cb, std::uint32_t index_bits) {
  const std::uint32_t max_len = cb.max_len();
  if (max_len == 0) return;  // empty codebook: stay empty, ladder handles it
  index_bits_ = std::clamp(index_bits, 1u, max_len);
  entries_.assign(std::size_t{1} << index_bits_, Entry{});

  // Every codeword of length l <= K owns the 2^(K-l) indices whose top l
  // bits equal the codeword; longer codewords and unassigned prefixes keep
  // the default fallback entry (len == 0).
  const auto encode = cb.encode_table();
  for (std::size_t s = 0; s < encode.size(); ++s) {
    const Codeword& c = encode[s];
    if (c.len == 0 || c.len > index_bits_) continue;
    const std::uint32_t shift = index_bits_ - c.len;
    const std::uint32_t base = c.bits << shift;
    const std::uint32_t span = 1u << shift;
    for (std::uint32_t i = 0; i < span; ++i) {
      entries_[base + i] = Entry{static_cast<std::uint16_t>(s), c.len, 0};
    }
  }

  // Multi-symbol entries, derived from the single-symbol fill: for each
  // window, greedily re-probe the single table on the bits remaining after
  // each retired codeword (left-aligned, zero-filled). A codeword is CERTAIN
  // only while its length fits the remaining window bits — prefix-freeness
  // guarantees that if any codeword of length <= remaining prefixes the real
  // stream, the zero-filled probe resolves to exactly that codeword — so
  // packing stops at the first entry that is a fallback or overruns the
  // window. count == 0 iff the single entry is a fallback, keeping the two
  // probe kinds' fallback conditions identical.
  multi_.assign(entries_.size(), MultiEntry{});
  const auto mask = static_cast<std::uint32_t>(entries_.size() - 1);
  for (std::uint32_t w = 0; w < entries_.size(); ++w) {
    MultiEntry& m = multi_[w];
    std::uint32_t used = 0;
    while (m.count < kMaxMultiSymbols) {
      const Entry& e = entries_[(w << used) & mask];
      if (e.len == 0 || e.len + used > index_bits_) break;
      m.symbols[m.count++] = e.symbol;
      used += e.len;
    }
    m.bits = static_cast<std::uint8_t>(used);
  }
}

}  // namespace ohd::huffman
