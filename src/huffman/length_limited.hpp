// Optimal length-limited prefix codes via the package-merge algorithm
// (Larmore & Hirschberg 1990). huffman_code_lengths() caps lengths by
// iterative frequency flattening, which is fast and near-optimal in practice;
// package_merge_lengths() is the exact optimum under the cap and serves as
// the reference the heuristic is tested against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ohd::huffman {

/// Returns per-symbol code lengths minimizing sum(freq * len) subject to
/// len <= max_len for every occurring symbol. Zero-frequency symbols get
/// length 0. Throws std::invalid_argument if 2^max_len is smaller than the
/// number of occurring symbols (no prefix code exists).
std::vector<std::uint8_t> package_merge_lengths(
    std::span<const std::uint64_t> freqs, std::uint32_t max_len);

/// Weighted total bits of a length assignment (the quantity package-merge
/// minimizes); shared by tests and benches.
std::uint64_t weighted_length(std::span<const std::uint64_t> freqs,
                              std::span<const std::uint8_t> lengths);

}  // namespace ohd::huffman
