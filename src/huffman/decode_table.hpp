// Flat lookup-table decoding of canonical Huffman codes.
//
// The table is indexed by the next `index_bits()` bits of the stream
// (default 12, capped at the codebook's max length); each entry packs the
// decoded {symbol, len} for every codeword of length <= index_bits(), so the
// per-symbol decode step becomes a single table read: peek(K) -> table[idx]
// -> skip(len). Codewords longer than K (and unassigned prefixes, reachable
// while desynchronized) hit a fallback entry and finish on the compact
// first-code ladder, continuing from the K bits already examined.
//
// This models the paper's shared-memory decode-table discussion: the table
// is 4 bytes/entry (16 KiB at K=12), small enough to stay resident, and
// costs ONE read per symbol instead of the two dependent scattered reads of
// the per-length first-code walk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ohd::huffman {

class Codebook;

class DecodeTable {
public:
  /// Default index width. 12 bits covers every codeword of typical
  /// quantization-code books (which concentrate mass near the radius) while
  /// keeping the table at 16 KiB — one shared-memory-resident tile.
  static constexpr std::uint32_t kDefaultIndexBits = 12;

  struct Entry {
    std::uint16_t symbol = 0;
    std::uint8_t len = 0;  // 0 => fallback to the first-code ladder
    std::uint8_t reserved = 0;
  };
  static_assert(sizeof(Entry) == 4, "entries must pack to one 32-bit word");

  DecodeTable() = default;

  /// Builds the table for `cb` with the requested index width, clamped to
  /// [1, cb.max_len()]. An empty codebook yields an empty table
  /// (index_bits() == 0) and decoding falls back to the ladder entirely.
  explicit DecodeTable(const Codebook& cb,
                       std::uint32_t index_bits = kDefaultIndexBits);

  /// Stream bits consumed per probe; 0 for an empty table.
  std::uint32_t index_bits() const { return index_bits_; }
  bool empty() const { return entries_.empty(); }
  std::uint64_t size_bytes() const { return entries_.size() * sizeof(Entry); }

  const Entry& entry(std::uint32_t idx) const { return entries_[idx]; }
  std::span<const Entry> entries() const { return entries_; }

private:
  std::uint32_t index_bits_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace ohd::huffman
