// Flat lookup-table decoding of canonical Huffman codes.
//
// The table is indexed by the next `index_bits()` bits of the stream
// (default 12, capped at the codebook's max length); each entry packs the
// decoded {symbol, len} for every codeword of length <= index_bits(), so the
// per-symbol decode step becomes a single table read: peek(K) -> table[idx]
// -> skip(len). Codewords longer than K (and unassigned prefixes, reachable
// while desynchronized) hit a fallback entry and finish on the compact
// first-code ladder, continuing from the K bits already examined.
//
// On top of the single-symbol entries the table carries MULTI-SYMBOL entries:
// each K-bit window also records every COMPLETE codeword it contains, up to
// kMaxMultiSymbols of them, so one probe can retire several short codewords
// at once (quantization codes concentrate on 2-4 bit codewords, so a 12-bit
// window typically holds 3+). A codeword is packed only when its length fits
// the bits remaining in the window — by prefix-freeness the zero-filled
// probe then identifies it unambiguously — which keeps multi-symbol decoding
// bit-identical to repeated single-symbol steps.
//
// This models the paper's shared-memory decode-table discussion: the
// single-symbol table is 4 bytes/entry (16 KiB at K=12) and the multi-symbol
// table 8 bytes/entry (32 KiB), small enough to stay resident, and costing
// ONE read per probe instead of the two dependent scattered reads of the
// per-length first-code walk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ohd::huffman {

class Codebook;

class DecodeTable {
public:
  /// Default index width. 12 bits covers every codeword of typical
  /// quantization-code books (which concentrate mass near the radius) while
  /// keeping the table at 16 KiB — one shared-memory-resident tile.
  static constexpr std::uint32_t kDefaultIndexBits = 12;

  /// Complete codewords one multi-symbol entry can retire per probe. Three
  /// keeps the entry at one 64-bit word (2 bytes/symbol + count + bits) and
  /// already saturates a 12-bit window at the ~3-4 bit codeword lengths of
  /// skewed quantization streams.
  static constexpr std::uint32_t kMaxMultiSymbols = 3;

  struct Entry {
    std::uint16_t symbol = 0;
    std::uint8_t len = 0;  // 0 => fallback to the first-code ladder
    std::uint8_t reserved = 0;
  };
  static_assert(sizeof(Entry) == 4, "entries must pack to one 32-bit word");

  /// One K-bit window's worth of complete codewords. count == 0 means the
  /// window's FIRST codeword is longer than the index width (or an
  /// unassigned prefix) and the probe must fall back to the ladder;
  /// otherwise the first `count` symbols consume `bits` stream bits total.
  struct MultiEntry {
    std::uint16_t symbols[kMaxMultiSymbols] = {0, 0, 0};
    std::uint8_t count = 0;
    std::uint8_t bits = 0;
  };
  static_assert(sizeof(MultiEntry) == 8,
                "multi entries must pack to one 64-bit word");

  DecodeTable() = default;

  /// Builds the table for `cb` with the requested index width, clamped to
  /// [1, cb.max_len()]. An empty codebook yields an empty table
  /// (index_bits() == 0) and decoding falls back to the ladder entirely.
  explicit DecodeTable(const Codebook& cb,
                       std::uint32_t index_bits = kDefaultIndexBits);

  /// Stream bits consumed per probe; 0 for an empty table.
  std::uint32_t index_bits() const { return index_bits_; }
  bool empty() const { return entries_.empty(); }
  std::uint64_t size_bytes() const { return entries_.size() * sizeof(Entry); }
  std::uint64_t multi_size_bytes() const {
    return multi_.size() * sizeof(MultiEntry);
  }

  const Entry& entry(std::uint32_t idx) const { return entries_[idx]; }
  std::span<const Entry> entries() const { return entries_; }

  const MultiEntry& multi_entry(std::uint32_t idx) const {
    return multi_[idx];
  }
  std::span<const MultiEntry> multi_entries() const { return multi_; }

private:
  std::uint32_t index_bits_ = 0;
  std::vector<Entry> entries_;
  std::vector<MultiEntry> multi_;
};

}  // namespace ohd::huffman
