// Deterministic synthetic stand-ins for the paper's eight evaluation
// datasets (SDRBench HACC, EXAALT, CESM-ATM, Nyx, Hurricane, QMCPack, plus
// RTM and GAMESS). Each generator produces a float field whose
// Lorenzo-quantized codes, at relative error bound 1e-3, land in the same
// compression-ratio regime as the corresponding real dataset (paper
// Table IV), with region-to-region variation in compressibility — the
// property the shared-memory tuner (Algorithm 2) exploits.
//
// Generators are seeded and platform-deterministic; sizes default to ~2M
// elements and scale linearly with `scale`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sz/lorenzo.hpp"

namespace ohd::data {

struct Field {
  std::string name;
  sz::Dims dims;
  std::vector<float> data;

  std::uint64_t bytes() const { return data.size() * 4; }
};

/// 1-D cosmology particle velocities: broad multi-scale structure with
/// strong small-scale noise (target CR ~ 3.2).
Field make_hacc(double scale = 1.0, std::uint64_t seed = 42);

/// 2-D molecular dynamics: nearly incompressible thermal noise plus a
/// fraction of range-breaking values that become outliers (target CR ~ 2.4).
Field make_exaalt(double scale = 1.0, std::uint64_t seed = 43);

/// 3-D (stacked 2-D) climate: smooth large-scale fields with rough frontal
/// bands (target CR ~ 9).
Field make_cesm(double scale = 1.0, std::uint64_t seed = 44);

/// 3-D cosmology baryon density: very smooth with rare halos; the paper's
/// highest-compressibility dataset, mostly 1-bit codewords (target CR ~ 16).
Field make_nyx(double scale = 1.0, std::uint64_t seed = 45);

/// 3-D (stacked) hurricane simulation: smooth with a turbulent eye region
/// (target CR ~ 9.8).
Field make_hurricane(double scale = 1.0, std::uint64_t seed = 46);

/// 3-D quantum Monte Carlo orbitals: oscillatory and noisy (target CR ~ 2.5).
Field make_qmcpack(double scale = 1.0, std::uint64_t seed = 47);

/// 3-D reverse-time-migration wavefield: band-limited oscillations over a
/// quiet background (target CR ~ 8.4).
Field make_rtm(double scale = 1.0, std::uint64_t seed = 48);

/// 1-D two-electron integrals: overwhelmingly near-zero magnitudes with a
/// heavy spike tail (target CR ~ 12).
Field make_gamess(double scale = 1.0, std::uint64_t seed = 49);

/// All eight datasets in the paper's column order.
std::vector<Field> evaluation_suite(double scale = 1.0);

/// Generator lookup by dataset name ("HACC", "EXAALT", ...); throws on
/// unknown names.
Field make_by_name(const std::string& name, double scale = 1.0);

/// Names in the paper's column order.
const std::vector<std::string>& dataset_names();

}  // namespace ohd::data
