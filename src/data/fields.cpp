#include "data/fields.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace ohd::data {

namespace {

using util::Xoshiro256;

constexpr double kTwoPi = 6.283185307179586;

/// Noise levels below are expressed in QUANTA of the Lorenzo quantizer at
/// relative error bound 1e-3: one quantum is 2e-3 of the field's value
/// range. A prediction-error sigma of q quanta yields roughly
/// log2(q * sqrt(2*pi*e)) bits per quantization code.
double quanta(double value_range, double n) { return 2e-3 * value_range * n; }

std::size_t scaled(std::size_t n, double scale) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(n * scale));
}

}  // namespace

Field make_hacc(double scale, std::uint64_t seed) {
  Field f;
  f.name = "HACC";
  const std::size_t n = scaled(2'000'000, scale);
  f.dims = sz::Dims::d1(n);
  f.data.resize(n);
  Xoshiro256 rng(seed);
  // Velocity field: large-scale flows (sinusoids) + HEAVY-TAILED small-scale
  // noise, like real particle velocities: most samples sit a few quanta from
  // the prediction, a tail sits hundreds of quanta away. The tail keeps the
  // baseline ratio near the paper's 3.2 at rel eb 1e-3, while the narrow
  // core lets compressibility rise steeply with the error bound — the
  // behaviour Figure 2 sweeps. Range ~ [-1.6, 1.6].
  const double range = 3.2;
  const std::size_t regions = 16;
  for (std::size_t r = 0; r < regions; ++r) {
    const double sigma_core = quanta(range, 4.0 + 6.0 * rng.uniform());
    const double sigma_tail = sigma_core * 70.0;
    const std::size_t lo = r * n / regions;
    const std::size_t hi = (r + 1) * n / regions;
    const double phase = rng.uniform(0.0, kTwoPi);
    for (std::size_t i = lo; i < hi; ++i) {
      const double x = static_cast<double>(i) / static_cast<double>(n);
      const double base = std::sin(kTwoPi * 3.0 * x + phase) +
                          0.5 * std::sin(kTwoPi * 17.0 * x) +
                          0.1 * std::sin(kTwoPi * 101.0 * x);
      const double sigma = rng.uniform() < 0.20 ? sigma_tail : sigma_core;
      f.data[i] = static_cast<float>(base + sigma * rng.normal());
    }
  }
  return f;
}

Field make_exaalt(double scale, std::uint64_t seed) {
  Field f;
  f.name = "EXAALT";
  const std::size_t ny = scaled(64, std::sqrt(scale));
  const std::size_t nx = scaled(32768, std::sqrt(scale));
  f.dims = sz::Dims::d2(nx, ny);
  f.data.resize(nx * ny);
  Xoshiro256 rng(seed);
  // Atomic coordinates/forces: dominated by thermal noise; ~8% of the values
  // jump across the lattice (defects), exceeding the quantizer radius and
  // becoming outliers. Range ~ [-2, 2].
  const double range = 4.0;
  const double sigma = quanta(range, 11.0);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const double u = static_cast<double>(x) / static_cast<double>(nx);
      double v = 0.8 * std::sin(kTwoPi * (u * 5.0 + 0.03 * y)) +
                 sigma * rng.normal();
      if (rng.uniform() < 0.06) v += rng.uniform(-1.9, 1.9);
      f.data[y * nx + x] = static_cast<float>(v);
    }
  }
  return f;
}

Field make_cesm(double scale, std::uint64_t seed) {
  Field f;
  f.name = "CESM";
  const std::size_t nz = 8;
  const std::size_t ny = scaled(512, std::sqrt(scale));
  const std::size_t nx = scaled(512, std::sqrt(scale));
  f.dims = sz::Dims::d3(nx, ny, nz);
  f.data.resize(nx * ny * nz);
  Xoshiro256 rng(seed);
  // Climate slices: smooth planetary waves; frontal bands are rougher.
  const double range = 2.4;
  std::size_t i = 0;
  for (std::size_t z = 0; z < nz; ++z) {
    const double level_roughness = 0.25 + 1.2 * rng.uniform();
    for (std::size_t y = 0; y < ny; ++y) {
      const double lat = static_cast<double>(y) / static_cast<double>(ny);
      // Frontal band around mid-latitudes.
      const double frontal =
          std::exp(-std::pow((lat - 0.55) / 0.08, 2.0)) * 3.0;
      const double sigma =
          quanta(range, 0.04 * level_roughness * (1.0 + frontal));
      for (std::size_t x = 0; x < nx; ++x, ++i) {
        const double lon = static_cast<double>(x) / static_cast<double>(nx);
        const double base =
            std::sin(kTwoPi * (2.0 * lon + 0.5 * lat)) *
                std::cos(kTwoPi * (1.0 * lat + 0.1 * z)) +
            0.3 * std::sin(kTwoPi * 7.0 * lon) * std::sin(kTwoPi * 5.0 * lat);
        f.data[i] = static_cast<float>(base + sigma * rng.normal());
      }
    }
  }
  return f;
}

Field make_nyx(double scale, std::uint64_t seed) {
  Field f;
  f.name = "Nyx";
  const std::size_t n1 = scaled(128, std::cbrt(scale));
  f.dims = sz::Dims::d3(n1, n1, n1);
  f.data.resize(n1 * n1 * n1);
  Xoshiro256 rng(seed);
  // Baryon density: extremely smooth background with a few compact halos.
  const double range = 2.0;
  const double sigma = quanta(range, 0.03);
  struct Halo {
    double x, y, z, amp, w;
  };
  std::vector<Halo> halos(24);
  for (auto& h : halos) {
    h = {rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform(0.3, 1.0),
         rng.uniform(0.03, 0.06)};
  }
  std::size_t i = 0;
  for (std::size_t z = 0; z < n1; ++z) {
    for (std::size_t y = 0; y < n1; ++y) {
      for (std::size_t x = 0; x < n1; ++x, ++i) {
        const double px = static_cast<double>(x) / n1;
        const double py = static_cast<double>(y) / n1;
        const double pz = static_cast<double>(z) / n1;
        // Mostly-void background: flat at the density floor.
        double v = 0.02;
        for (const Halo& h : halos) {
          const double d2 = (px - h.x) * (px - h.x) +
                            (py - h.y) * (py - h.y) + (pz - h.z) * (pz - h.z);
          v += h.amp * std::exp(-d2 / (h.w * h.w));
        }
        f.data[i] = static_cast<float>(v + sigma * rng.normal());
      }
    }
  }
  return f;
}

Field make_hurricane(double scale, std::uint64_t seed) {
  Field f;
  f.name = "Hurricane";
  const std::size_t nz = 50;
  const std::size_t n1 = scaled(200, std::sqrt(scale));
  f.dims = sz::Dims::d3(n1, n1, nz);
  f.data.resize(n1 * n1 * nz);
  Xoshiro256 rng(seed);
  const double range = 2.2;
  std::size_t i = 0;
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < n1; ++y) {
      for (std::size_t x = 0; x < n1; ++x, ++i) {
        const double px = static_cast<double>(x) / n1 - 0.5;
        const double py = static_cast<double>(y) / n1 - 0.5;
        const double r = std::sqrt(px * px + py * py);
        // Spiral flow around the eye; turbulence intensifies near the core.
        const double theta = std::atan2(py, px);
        const double base =
            std::exp(-r * 4.0) * std::sin(6.0 * theta + 20.0 * r) +
            0.4 * std::sin(kTwoPi * (0.02 * z + r * 3.0));
        const double sigma =
            quanta(range, 0.04 + 0.9 * std::exp(-r * 10.0));
        f.data[i] = static_cast<float>(base + sigma * rng.normal());
      }
    }
  }
  return f;
}

Field make_qmcpack(double scale, std::uint64_t seed) {
  Field f;
  f.name = "QMCPack";
  const std::size_t nz = scaled(33, std::cbrt(scale));
  const std::size_t n1 = scaled(256, std::cbrt(scale));
  f.dims = sz::Dims::d3(n1, n1, nz);
  f.data.resize(n1 * n1 * nz);
  Xoshiro256 rng(seed);
  // Einspline orbital coefficients: high-frequency oscillations that the
  // Lorenzo predictor tracks poorly.
  const double range = 2.0;
  const double sigma = quanta(range, 6.0);
  std::size_t i = 0;
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < n1; ++y) {
      for (std::size_t x = 0; x < n1; ++x, ++i) {
        const double v =
            std::sin(0.5 * x) * std::cos(0.6 * y) * std::sin(0.4 * z);
        f.data[i] = static_cast<float>(0.7 * v + sigma * rng.normal());
      }
    }
  }
  return f;
}

Field make_rtm(double scale, std::uint64_t seed) {
  Field f;
  f.name = "RTM";
  const std::size_t n1 = scaled(128, std::cbrt(scale));
  f.dims = sz::Dims::d3(n1, n1, n1);
  f.data.resize(n1 * n1 * n1);
  Xoshiro256 rng(seed);
  // Seismic wavefield snapshot: an expanding band-limited wavefront over a
  // quiet medium.
  const double range = 2.0;
  std::size_t i = 0;
  for (std::size_t z = 0; z < n1; ++z) {
    for (std::size_t y = 0; y < n1; ++y) {
      for (std::size_t x = 0; x < n1; ++x, ++i) {
        const double px = static_cast<double>(x) / n1 - 0.5;
        const double py = static_cast<double>(y) / n1 - 0.5;
        const double pz = static_cast<double>(z) / n1 - 0.3;
        const double r = std::sqrt(px * px + py * py + pz * pz);
        const double wavefront =
            std::exp(-std::pow((r - 0.35) / 0.08, 2.0)) *
            std::sin(kTwoPi * r * 8.0);
        const double sigma = quanta(range, 0.03 + 0.22 * std::abs(wavefront));
        f.data[i] = static_cast<float>(wavefront + sigma * rng.normal());
      }
    }
  }
  return f;
}

Field make_gamess(double scale, std::uint64_t seed) {
  Field f;
  f.name = "GAMESS";
  const std::size_t n = scaled(2'000'000, scale);
  f.dims = sz::Dims::d1(n);
  f.data.resize(n);
  Xoshiro256 rng(seed);
  // Two-electron integrals: magnitudes span many orders, and the vast
  // majority are negligible relative to the largest integrals (screening),
  // so at a range-relative bound most codes collapse onto the zero-error
  // code while a spike tail keeps the codebook broad.
  for (std::size_t i = 0; i < n; ++i) {
    const bool negligible = rng.uniform() < 0.96;
    const double mag = negligible ? std::pow(10.0, rng.uniform(-9.0, -5.0))
                                  : std::pow(10.0, rng.uniform(-5.0, 0.0));
    const double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
    f.data[i] = static_cast<float>(sign * mag);
  }
  return f;
}

std::vector<Field> evaluation_suite(double scale) {
  std::vector<Field> suite;
  suite.push_back(make_hacc(scale));
  suite.push_back(make_exaalt(scale));
  suite.push_back(make_cesm(scale));
  suite.push_back(make_nyx(scale));
  suite.push_back(make_hurricane(scale));
  suite.push_back(make_qmcpack(scale));
  suite.push_back(make_rtm(scale));
  suite.push_back(make_gamess(scale));
  return suite;
}

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names = {
      "HACC", "EXAALT", "CESM", "Nyx", "Hurricane", "QMCPack", "RTM",
      "GAMESS"};
  return names;
}

Field make_by_name(const std::string& name, double scale) {
  if (name == "HACC") return make_hacc(scale);
  if (name == "EXAALT") return make_exaalt(scale);
  if (name == "CESM") return make_cesm(scale);
  if (name == "Nyx") return make_nyx(scale);
  if (name == "Hurricane") return make_hurricane(scale);
  if (name == "QMCPack") return make_qmcpack(scale);
  if (name == "RTM") return make_rtm(scale);
  if (name == "GAMESS") return make_gamess(scale);
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace ohd::data
