// Generic synthetic symbol-stream generators for tests, property sweeps, and
// microbenchmarks: distributions chosen to stress specific decoder behaviors
// (uniform => long codewords / slow self-sync; geometric => realistic skew;
// zipf => heavy head with long tail; markov => bursty regions with locally
// varying compressibility, the pattern Algorithm 2 exploits).
#pragma once

#include <cstdint>
#include <vector>

namespace ohd::data {

std::vector<std::uint16_t> uniform_stream(std::size_t n, std::uint32_t alphabet,
                                          std::uint64_t seed);

/// P(symbol = k) proportional to (1-p)^k; `cont` = p in (0, 1).
std::vector<std::uint16_t> geometric_stream(std::size_t n,
                                            std::uint32_t alphabet,
                                            double cont, std::uint64_t seed);

/// P(symbol = k) proportional to 1/(k+1)^s.
std::vector<std::uint16_t> zipf_stream(std::size_t n, std::uint32_t alphabet,
                                       double s, std::uint64_t seed);

/// Two-state Markov stream: a "calm" state emitting near-constant symbols
/// and a "burst" state emitting broad symbols, with the given switching
/// probability. Produces sequences whose local compression ratios differ —
/// the workload Algorithm 2's per-class kernels target.
std::vector<std::uint16_t> markov_stream(std::size_t n, std::uint32_t alphabet,
                                         double switch_prob,
                                         std::uint64_t seed);

/// Quantization-code-like stream: Gaussian around alphabet/2, clamped to
/// [1, alphabet-1] (0 is cuSZ's outlier code).
std::vector<std::uint16_t> quant_code_stream(std::size_t n,
                                             std::uint32_t alphabet,
                                             double sigma, std::uint64_t seed);

}  // namespace ohd::data
