#include "data/generic.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace ohd::data {

using util::Xoshiro256;

std::vector<std::uint16_t> uniform_stream(std::size_t n, std::uint32_t alphabet,
                                          std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) s = static_cast<std::uint16_t>(rng.bounded(alphabet));
  return out;
}

std::vector<std::uint16_t> geometric_stream(std::size_t n,
                                            std::uint32_t alphabet,
                                            double cont, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  for (auto& s : out) {
    std::uint32_t v = 0;
    while (v + 1 < alphabet && rng.uniform() < cont) ++v;
    s = static_cast<std::uint16_t>(v);
  }
  return out;
}

std::vector<std::uint16_t> zipf_stream(std::size_t n, std::uint32_t alphabet,
                                       double s, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  // Inverse-CDF sampling over the (finite) Zipf distribution.
  std::vector<double> cdf(alphabet);
  double acc = 0.0;
  for (std::uint32_t k = 0; k < alphabet; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = acc;
  }
  std::vector<std::uint16_t> out(n);
  for (auto& sym : out) {
    const double u = rng.uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    sym = static_cast<std::uint16_t>(it - cdf.begin());
  }
  return out;
}

std::vector<std::uint16_t> markov_stream(std::size_t n, std::uint32_t alphabet,
                                         double switch_prob,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  bool burst = false;
  const std::uint32_t calm_symbol = alphabet / 2;
  for (auto& s : out) {
    if (rng.uniform() < switch_prob) burst = !burst;
    if (burst) {
      s = static_cast<std::uint16_t>(rng.bounded(alphabet));
    } else {
      // Calm: tight around a single symbol.
      const long v = static_cast<long>(calm_symbol) +
                     static_cast<long>(rng.bounded(3)) - 1;
      s = static_cast<std::uint16_t>(
          std::clamp<long>(v, 0, static_cast<long>(alphabet) - 1));
    }
  }
  return out;
}

std::vector<std::uint16_t> quant_code_stream(std::size_t n,
                                             std::uint32_t alphabet,
                                             double sigma,
                                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint16_t> out(n);
  const long center = static_cast<long>(alphabet / 2);
  for (auto& s : out) {
    const long v = center + std::lround(rng.normal() * sigma);
    s = static_cast<std::uint16_t>(
        std::clamp<long>(v, 1, static_cast<long>(alphabet) - 1));
  }
  return out;
}

}  // namespace ohd::data
