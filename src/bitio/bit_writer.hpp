// MSB-first bit stream writer over 32-bit units — the unit layout that the
// W&S / Yamamoto decoders (and this reproduction) consume. Bit i of the
// stream lives in unit i/32 at bit position (31 - i%32).
#pragma once

#include <cstdint>
#include <vector>

namespace ohd::bitio {

class BitWriter {
public:
  /// Append the lowest `len` bits of `code`, most significant first.
  /// `len` must be in [0, 32].
  void put(std::uint32_t code, std::uint32_t len);

  /// Total bits written so far.
  std::uint64_t bit_count() const { return bit_count_; }

  /// Pad with zero bits to the next multiple of `bits` (e.g. a subsequence
  /// boundary). Padding bits are counted in bit_count().
  void pad_to(std::uint64_t bits);

  /// Finish the stream: returns the unit array (zero-padded tail).
  std::vector<std::uint32_t> finish();

  /// Units written so far without finishing (read-only snapshot semantics:
  /// the last partial unit is included, zero-padded).
  const std::vector<std::uint32_t>& units() const { return units_; }

private:
  std::vector<std::uint32_t> units_;
  std::uint64_t bit_count_ = 0;
};

}  // namespace ohd::bitio
