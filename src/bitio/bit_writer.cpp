#include "bitio/bit_writer.hpp"

#include <cassert>

namespace ohd::bitio {

void BitWriter::put(std::uint32_t code, std::uint32_t len) {
  assert(len <= 32);
  if (len == 0) return;
  std::uint32_t pos = static_cast<std::uint32_t>(bit_count_ % 32);
  const std::uint64_t needed_units = (bit_count_ + len + 31) / 32;
  if (units_.size() < needed_units) units_.resize(needed_units, 0);

  std::uint64_t unit = bit_count_ / 32;
  std::uint32_t remaining = len;
  while (remaining > 0) {
    const std::uint32_t room = 32 - pos;
    const std::uint32_t take = remaining < room ? remaining : room;
    // The `take` most significant of the remaining bits. remaining - take is
    // always < 32, so the shift is well-defined.
    const std::uint32_t chunk =
        (code >> (remaining - take)) &
        ((take == 32) ? 0xFFFFFFFFu : ((1u << take) - 1u));
    units_[unit] |= chunk << (room - take);
    remaining -= take;
    pos += take;
    if (pos == 32) {
      pos = 0;
      ++unit;
    }
  }
  bit_count_ += len;
}

void BitWriter::pad_to(std::uint64_t bits) {
  assert(bits > 0);
  const std::uint64_t rem = bit_count_ % bits;
  if (rem == 0) return;
  std::uint64_t pad = bits - rem;
  while (pad > 32) {
    put(0, 32);
    pad -= 32;
  }
  put(0, static_cast<std::uint32_t>(pad));
}

std::vector<std::uint32_t> BitWriter::finish() {
  return std::move(units_);
}

}  // namespace ohd::bitio
