// MSB-first bit reader over 32-bit units, seekable to any bit offset. This is
// the exact read primitive the simulated decoder kernels use; it is
// deliberately branch-light because its cost is charged to the perf model per
// decoded codeword.
#pragma once

#include <cstdint>
#include <span>

namespace ohd::bitio {

class BitReader {
public:
  BitReader(std::span<const std::uint32_t> units, std::uint64_t total_bits)
      : units_(units), total_bits_(total_bits) {}

  void seek(std::uint64_t bit) { pos_ = bit; }
  std::uint64_t position() const { return pos_; }
  std::uint64_t total_bits() const { return total_bits_; }
  bool exhausted() const { return pos_ >= total_bits_; }

  /// Read one bit; reading past the end yields 0 (padding semantics).
  std::uint32_t get_bit() {
    if (pos_ >= total_bits_) {
      ++pos_;
      return 0;
    }
    const std::uint64_t unit = pos_ / 32;
    const std::uint32_t shift = 31 - static_cast<std::uint32_t>(pos_ % 32);
    ++pos_;
    return (units_[unit] >> shift) & 1u;
  }

  /// Peek up to `len` (<=32) bits without advancing; missing tail bits read
  /// as zero.
  std::uint32_t peek(std::uint32_t len) const;

  /// Advance by `len` bits.
  void skip(std::uint32_t len) { pos_ += len; }

private:
  std::span<const std::uint32_t> units_;
  std::uint64_t total_bits_;
  std::uint64_t pos_ = 0;
};

}  // namespace ohd::bitio
