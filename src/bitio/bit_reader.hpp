// MSB-first bit reader over 32-bit units, seekable to any bit offset. This is
// the exact read primitive the simulated decoder kernels use; it is
// deliberately branch-light because its cost is charged to the perf model per
// decoded codeword.
//
// The reader keeps a 64-bit refill buffer holding the next bits of the stream
// left-aligned (the bit at `position()` is the buffer's MSB). peek/get_bit/
// skip run off the buffer and only fall into the out-of-line refill every
// ~32 consumed bits, so the LUT decode step `peek(K) -> table[idx] ->
// skip(len)` touches memory once per unit instead of once per bit.
#pragma once

#include <cstdint>
#include <span>

namespace ohd::bitio {

class BitReader {
public:
  /// Bits guaranteed buffered after a refill (when the stream has them; tail
  /// bits read as zero either way). 33 > 32 means a full-width peek — and in
  /// particular a multi-symbol LUT probe of up to 32 bits — never straddles
  /// two refills.
  static constexpr std::uint32_t kMinRefillBits = 33;

  BitReader(std::span<const std::uint32_t> units, std::uint64_t total_bits)
      : units_(units), total_bits_(total_bits) {}

  void seek(std::uint64_t bit) {
    pos_ = bit;
    buf_ = 0;
    buf_bits_ = 0;
  }
  std::uint64_t position() const { return pos_; }
  std::uint64_t total_bits() const { return total_bits_; }
  bool exhausted() const { return pos_ >= total_bits_; }

  /// Read one bit; reading past the end yields 0 (padding semantics).
  std::uint32_t get_bit() {
    if (buf_bits_ == 0) refill();
    const auto bit = static_cast<std::uint32_t>(buf_ >> 63);
    buf_ <<= 1;
    --buf_bits_;
    ++pos_;
    return bit;
  }

  /// Peek up to `len` (<=32) bits without advancing; missing tail bits read
  /// as zero.
  std::uint32_t peek(std::uint32_t len) const {
    if (len == 0) return 0;
    if (buf_bits_ < len) refill();
    return static_cast<std::uint32_t>(buf_ >> (64 - len));
  }

  /// Advance by `len` bits.
  void skip(std::uint32_t len) {
    pos_ += len;
    if (len < buf_bits_) {
      buf_ <<= len;
      buf_bits_ -= len;
    } else {
      buf_ = 0;
      buf_bits_ = 0;
    }
  }

private:
  /// Refill the buffer to at least kMinRefillBits valid bits (bits past
  /// total_bits_, and bits past the unit array, enter as zeros), so a 32-bit
  /// peek never needs a second refill. One wide fetch: the two units covering
  /// the next 64 stream bits are combined and inserted in a single pass, so
  /// the decode loop's peek->probe->skip cadence pays at most one refill per
  /// probe and no per-unit loop.
  void refill() const;

  std::span<const std::uint32_t> units_;
  std::uint64_t total_bits_;
  std::uint64_t pos_ = 0;
  // Refill buffer; mutable so the logically-const peek can fault bits in.
  mutable std::uint64_t buf_ = 0;
  mutable std::uint32_t buf_bits_ = 0;
};

}  // namespace ohd::bitio
