#include "bitio/bit_reader.hpp"

namespace ohd::bitio {

void BitReader::refill() const {
  // Invariant on entry and between iterations: the buffer holds the
  // buf_bits_ bits starting at pos_, left-aligned, and the first missing bit
  // (pos_ + buf_bits_) is either where a seek/skip landed or a unit boundary
  // (every completed iteration extends the buffer to a unit boundary).
  while (buf_bits_ <= 32) {
    const std::uint64_t next = pos_ + buf_bits_;  // first bit not buffered
    const std::uint64_t unit = next >> 5;
    const auto offset = static_cast<std::uint32_t>(next & 31);
    const std::uint32_t width = 32 - offset;  // bits fetched this iteration
    std::uint64_t chunk = 0;
    if (unit < units_.size()) {
      // Bits [offset, 32) of the unit, right-aligned into `width` bits.
      chunk = units_[unit] & (0xFFFFFFFFu >> offset);
      // Zero any bits at or past total_bits_: the unit tail may hold
      // sequence padding, but the reader's contract is that bits beyond the
      // valid stream read as zero.
      if ((unit + 1) * 32 > total_bits_) {
        const std::uint64_t valid = total_bits_ > next ? total_bits_ - next : 0;
        chunk = valid == 0
                    ? 0
                    : chunk & ~((1ull << (width - valid)) - 1);
      }
    }
    buf_ |= chunk << (64 - buf_bits_ - width);
    buf_bits_ += width;
  }
}

}  // namespace ohd::bitio
