#include "bitio/bit_reader.hpp"

#include <algorithm>

namespace ohd::bitio {

void BitReader::refill() const {
  // Invariant on entry: the buffer holds the buf_bits_ bits starting at
  // pos_, left-aligned, with buf_bits_ < kMinRefillBits (callers only refill
  // when short). Fetch the two 32-bit units covering stream bits
  // [next, next + 64) in one go, left-align them behind the buffered bits,
  // and claim however many of them fit — at least 33, since at most 31
  // already-buffered bits of the first unit are dropped.
  const std::uint64_t next = pos_ + buf_bits_;  // first bit not buffered
  const std::uint64_t unit = next >> 5;
  const auto offset = static_cast<std::uint32_t>(next & 31);
  std::uint64_t wide = 0;
  if (unit < units_.size()) {
    wide = static_cast<std::uint64_t>(units_[unit]) << 32;
    if (unit + 1 < units_.size()) {
      wide |= units_[unit + 1];
    }
  }
  // Drop the already-buffered head bits of the first unit; `wide` now holds
  // bits [next, next + 64 - offset) left-aligned, zero-filled at the tail.
  wide <<= offset;
  // Zero any bits at or past total_bits_: the unit tail may hold sequence
  // padding, but the reader's contract is that bits beyond the valid stream
  // read as zero.
  if (total_bits_ < next + 64) {
    const std::uint64_t valid = total_bits_ > next ? total_bits_ - next : 0;
    wide = valid == 0 ? 0 : wide & (~0ull << (64 - valid));
  }
  buf_ |= wide >> buf_bits_;
  buf_bits_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(64, buf_bits_ + 64 - offset));
}

}  // namespace ohd::bitio
