#include "bitio/bit_reader.hpp"

namespace ohd::bitio {

std::uint32_t BitReader::peek(std::uint32_t len) const {
  if (len == 0) return 0;
  std::uint64_t p = pos_;
  std::uint32_t out = 0;
  for (std::uint32_t i = 0; i < len; ++i, ++p) {
    out <<= 1;
    if (p < total_bits_) {
      const std::uint64_t unit = p / 32;
      const std::uint32_t shift = 31 - static_cast<std::uint32_t>(p % 32);
      out |= (units_[unit] >> shift) & 1u;
    }
  }
  return out;
}

}  // namespace ohd::bitio
