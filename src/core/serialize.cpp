#include "core/serialize.hpp"

#include <stdexcept>

#include "util/bytes.hpp"

namespace ohd::core {

namespace {

constexpr char kMagic[4] = {'O', 'H', 'D', 'H'};
constexpr std::uint8_t kVersion = 1;

void write_geometry(util::ByteWriter& w, const huffman::StreamGeometry& g) {
  w.u32(g.units_per_subseq);
  w.u32(g.subseqs_per_seq);
}

huffman::StreamGeometry read_geometry(util::ByteReader& r) {
  huffman::StreamGeometry g;
  g.units_per_subseq = r.u32();
  g.subseqs_per_seq = r.u32();
  if (g.units_per_subseq == 0 || g.units_per_subseq > 64 ||
      g.subseqs_per_seq == 0 || g.subseqs_per_seq > 1024) {
    throw std::invalid_argument("implausible stream geometry");
  }
  return g;
}

void write_stream(util::ByteWriter& w, const huffman::StreamEncoding& s) {
  w.u64(s.total_bits);
  w.u64(s.num_symbols);
  write_geometry(w, s.geometry);
  w.array<std::uint32_t>(s.units);
}

huffman::StreamEncoding read_stream(util::ByteReader& r) {
  huffman::StreamEncoding s;
  s.total_bits = r.u64();
  s.num_symbols = r.u64();
  s.geometry = read_geometry(r);
  s.units = r.array<std::uint32_t>();
  if (s.total_bits > s.units.size() * 32ull) {
    throw std::invalid_argument("total_bits exceeds unit payload");
  }
  return s;
}

}  // namespace

std::vector<std::uint8_t> serialize_stream(const EncodedStream& enc,
                                           bool include_codebook) {
  util::ByteWriter w;
  w.magic(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(enc.method));
  w.u64(enc.num_symbols);
  const auto codebook_bytes =
      include_codebook ? enc.codebook.serialize() : std::vector<std::uint8_t>{};
  w.bytes(codebook_bytes);

  if (const auto* chunked =
          std::get_if<huffman::ChunkedEncoding>(&enc.payload)) {
    w.u64(chunked->num_symbols);
    w.u32(chunked->chunk_symbols);
    w.u64(chunked->total_bits);
    w.array<std::uint64_t>(chunked->chunk_bit_offset);
    w.array<std::uint32_t>(chunked->chunk_num_symbols);
    w.array<std::uint32_t>(chunked->units);
  } else if (const auto* plain =
                 std::get_if<huffman::StreamEncoding>(&enc.payload)) {
    write_stream(w, *plain);
  } else if (const auto* gap =
                 std::get_if<huffman::GapEncoding>(&enc.payload)) {
    write_stream(w, gap->stream);
    w.array<std::uint8_t>(gap->gaps);
  }
  return w.take();
}

EncodedStream deserialize_stream(std::span<const std::uint8_t> bytes,
                                 const huffman::Codebook* shared_codebook) {
  util::ByteReader r(bytes);
  r.expect_magic(kMagic);
  if (r.u8() != kVersion) {
    throw std::invalid_argument("unsupported blob version");
  }
  const auto method = static_cast<Method>(r.u8());
  switch (method) {
    case Method::CuszNaive:
    case Method::SelfSyncOriginal:
    case Method::SelfSyncOptimized:
    case Method::GapArrayOriginal8Bit:
    case Method::GapArrayOptimized:
      break;
    default:
      throw std::invalid_argument("unknown method tag");
  }

  EncodedStream enc;
  enc.method = method;
  enc.num_symbols = r.u64();
  const auto codebook_bytes = r.array<std::uint8_t>();
  if (codebook_bytes.empty()) {
    if (shared_codebook == nullptr) {
      throw std::invalid_argument(
          "stream omits its codebook and no shared codebook was provided");
    }
    // Copied by value to keep EncodedStream self-contained (every decoder
    // and test relies on that); the ~tens-of-KB table copy per chunk is
    // noise next to the functional decode of the chunk's symbols.
    enc.codebook = *shared_codebook;
  } else {
    enc.codebook = huffman::Codebook::deserialize(codebook_bytes);
  }

  switch (method) {
    case Method::CuszNaive: {
      huffman::ChunkedEncoding chunked;
      chunked.num_symbols = r.u64();
      chunked.chunk_symbols = r.u32();
      chunked.total_bits = r.u64();
      chunked.chunk_bit_offset = r.array<std::uint64_t>();
      chunked.chunk_num_symbols = r.array<std::uint32_t>();
      chunked.units = r.array<std::uint32_t>();
      if (chunked.chunk_bit_offset.size() != chunked.chunk_num_symbols.size()) {
        throw std::invalid_argument("chunk metadata size mismatch");
      }
      if (chunked.num_symbols != enc.num_symbols) {
        throw std::invalid_argument("symbol count mismatch");
      }
      enc.payload = std::move(chunked);
      break;
    }
    case Method::SelfSyncOriginal:
    case Method::SelfSyncOptimized: {
      huffman::StreamEncoding s = read_stream(r);
      if (s.num_symbols != enc.num_symbols) {
        throw std::invalid_argument("symbol count mismatch");
      }
      enc.payload = std::move(s);
      break;
    }
    case Method::GapArrayOriginal8Bit:
    case Method::GapArrayOptimized: {
      huffman::GapEncoding gap;
      gap.stream = read_stream(r);
      gap.gaps = r.array<std::uint8_t>();
      if (gap.stream.num_symbols != enc.num_symbols) {
        throw std::invalid_argument("symbol count mismatch");
      }
      if (gap.gaps.size() != gap.stream.num_subseqs()) {
        throw std::invalid_argument("gap array size mismatch");
      }
      enc.payload = std::move(gap);
      break;
    }
  }
  return enc;
}

}  // namespace ohd::core
