// Byte-level (de)serialization of encoded Huffman streams, so compressed data
// can be persisted or shipped between encoder and decoder processes. The
// format is versioned and self-describing; deserialization validates every
// length against the blob size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/huffman_codec.hpp"

namespace ohd::core {

/// Serializes an encoded stream (method tag + codebook + payload + sidecars).
/// With `include_codebook == false` the codebook section is written as a
/// zero-length array: the stream then deserializes only against an external
/// (shared) codebook — the container v2 shared-codebook path, which stores
/// one field-level codebook instead of one per chunk.
std::vector<std::uint8_t> serialize_stream(const EncodedStream& enc,
                                           bool include_codebook = true);

/// Parses a serialized stream; throws std::invalid_argument on truncation,
/// bad magic, or inconsistent metadata. A stream whose codebook section is
/// empty resolves its codebook from `shared_codebook`; passing none for such
/// a stream is an error (the stream is undecodable without a codebook).
EncodedStream deserialize_stream(
    std::span<const std::uint8_t> bytes,
    const huffman::Codebook* shared_codebook = nullptr);

}  // namespace ohd::core
