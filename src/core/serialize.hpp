// Byte-level (de)serialization of encoded Huffman streams, so compressed data
// can be persisted or shipped between encoder and decoder processes. The
// format is versioned and self-describing; deserialization validates every
// length against the blob size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/huffman_codec.hpp"

namespace ohd::core {

/// Serializes an encoded stream (method tag + codebook + payload + sidecars).
std::vector<std::uint8_t> serialize_stream(const EncodedStream& enc);

/// Parses a serialized stream; throws std::invalid_argument on truncation,
/// bad magic, or inconsistent metadata.
EncodedStream deserialize_stream(std::span<const std::uint8_t> bytes);

}  // namespace ohd::core
