#include "core/config.hpp"

#include <algorithm>

namespace ohd::core {

std::uint32_t compute_t_high(const cudasim::DeviceSpec& spec,
                             std::uint32_t threads_per_block) {
  // 25% occupancy in resident threads.
  const std::uint32_t target_threads = spec.max_threads_per_sm / 4;
  const std::uint32_t blocks_needed =
      std::max(1u, target_threads / std::max(1u, threads_per_block));
  // Largest shared allocation per block that still fits `blocks_needed`
  // blocks on one SM.
  const std::uint32_t shmem_budget = spec.shmem_per_sm_bytes / blocks_needed;
  return std::max(1u, shmem_budget / 2048u);
}

}  // namespace ohd::core
