// The decode-and-write phase shared by the self-synchronization and gap-array
// decoders, in both variants the paper evaluates:
//
//  * decode_write_direct — the ORIGINAL scheme: every thread decodes its
//    subsequence and stores each symbol straight to global memory at its
//    output index. Warp lanes write to locations ~one subsequence's output
//    apart, so stores are uncoalesced (one 32-byte transaction per symbol),
//    which is the §IV-B bottleneck.
//  * decode_write_staged — the paper's Algorithm 1: decode into a block-local
//    shared-memory buffer, then cooperatively copy the buffer to global
//    memory with fully coalesced stores. Iterates when the buffer is smaller
//    than the block's total output.
//  * decode_write_tuned — the paper's Algorithm 2 (shmem_tuner.hpp) drives
//    decode_write_staged with per-compression-ratio-class buffer sizes.
//
// Alongside the simulated kernels lives the HOST-side decode-write sink
// (host_decode_symbols): a sequential multi-symbol-LUT decode of a whole
// encoded stream that hands each quantization code to a caller sink in
// stream order — the front half of the fused decode→dequantize→reconstruct
// path (sz::Lorenzo1DSink supplies the back half), with no intermediate
// quant-code vector.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <variant>
#include <vector>

#include "core/config.hpp"
#include "core/huffman_codec.hpp"
#include "core/phase_timings.hpp"
#include "cudasim/exec.hpp"
#include "huffman/codebook.hpp"
#include "huffman/decode_step.hpp"
#include "huffman/encoder.hpp"

namespace ohd::core {

/// Everything the decode+write phase needs, prepared by the synchronization
/// (self-sync) or counting (gap-array) phases.
struct WritePlan {
  const huffman::StreamEncoding* stream = nullptr;
  const huffman::Codebook* codebook = nullptr;

  /// Validated start bit per subsequence, plus a sentinel entry equal to
  /// total_bits. Size = num_subseqs + 1.
  std::span<const std::uint64_t> start_bit;
  /// Output index per subsequence, plus a sentinel equal to the total symbol
  /// count. Size = num_subseqs + 1.
  std::span<const std::uint64_t> out_index;

  /// Simulated device addresses for the coalescing model.
  std::uint64_t units_addr = 0;
  std::uint64_t start_bit_addr = 0;
  std::uint64_t out_index_addr = 0;
  std::uint64_t out_addr = 0;
  std::uint64_t table_addr = 0;

  /// Bytes per output symbol: 2 for the multi-byte decoders, 1 for the
  /// original 8-bit gap-array decoder.
  std::uint32_t symbol_bytes = 2;

  std::uint32_t num_subseqs() const {
    return static_cast<std::uint32_t>(start_bit.size() - 1);
  }
};

/// Original direct-store decode+write over all subsequences.
/// `record_table_reads` marks the original implementations, which fetch the
/// decode tables from global memory per codeword.
double decode_write_direct(cudasim::SimContext& ctx, const WritePlan& plan,
                           std::span<std::uint16_t> out,
                           const DecoderConfig& config,
                           bool record_table_reads);

/// Algorithm 1 with a fixed shared buffer of `buffer_symbols` u16 entries,
/// over the given sequences (pass an empty span for "all sequences").
/// Returns the simulated kernel seconds (body time + launch overhead).
double decode_write_staged(cudasim::SimContext& ctx, const WritePlan& plan,
                           std::span<std::uint16_t> out,
                           const DecoderConfig& config,
                           std::uint32_t buffer_symbols,
                           std::span<const std::uint32_t> sequence_ids = {});

/// Result of the Algorithm 2 tuned decode+write.
struct TunedDecodeResult {
  double tune_seconds = 0.0;          // classify + histogram + sort + readback
  double decode_write_seconds = 0.0;  // concurrent per-class kernels
  std::uint32_t t_high = 0;
  std::vector<std::uint32_t> class_freq;           // sequences per class
  std::vector<std::uint32_t> class_buffer_symbols; // buffer chosen per class
};

/// Algorithm 2: classify each sequence by compression ratio, then launch one
/// staged kernel per class with a class-specific buffer, on concurrent
/// streams.
TunedDecodeResult decode_write_tuned(cudasim::SimContext& ctx,
                                     const WritePlan& plan,
                                     std::span<std::uint16_t> out,
                                     const DecoderConfig& config);

// ---------------------------------------------------------------------------
// Host-side decode-write sink (no simulation).

namespace detail {

/// Decodes exactly `n` codewords from `units`/`total_bits` starting at
/// `start_bit`, invoking sink(symbol) for each, with the multi-symbol LUT on
/// the bulk and single-symbol steps on the < kMaxMultiSymbols tail. Throws
/// if the stream desynchronizes (an unassigned prefix), which a well-formed
/// encoding never produces.
template <typename Sink>
void host_decode_span(std::span<const std::uint32_t> units,
                      std::uint64_t total_bits, std::uint64_t start_bit,
                      std::uint64_t n, const huffman::Codebook& cb,
                      Sink&& sink) {
  const huffman::DecodeTable& table = cb.decode_table();
  bitio::BitReader reader(units, total_bits);
  reader.seek(start_bit);
  std::uint64_t emitted = 0;
  while (emitted + huffman::DecodeTable::kMaxMultiSymbols <= n) {
    const huffman::DecodedBatch batch = huffman::decode_multi(reader, cb, table);
    if (batch.count == 0) [[unlikely]] {
      throw std::runtime_error("host decode desynchronized");
    }
    for (std::uint32_t i = 0; i < batch.count; ++i) sink(batch.symbols[i]);
    emitted += batch.count;
  }
  while (emitted < n) {
    const huffman::DecodedSymbol d = huffman::decode_one_lut(reader, cb, table);
    if (!d.valid) [[unlikely]] {
      throw std::runtime_error("host decode desynchronized");
    }
    sink(d.symbol);
    ++emitted;
  }
}

}  // namespace detail

/// Sequentially decodes ALL of an encoded stream's symbols on the host (no
/// simulated kernels, no intermediate symbol vector) and hands each one to
/// `sink(std::uint16_t)` in stream order. Handles every payload layout: the
/// plain and gap-array streams decode front to back (the gap sidecar is a
/// parallel-decoder aid and is not needed sequentially); the chunked layout
/// decodes chunk by chunk from its unit-aligned offsets.
template <typename Sink>
void host_decode_symbols(const EncodedStream& enc, Sink&& sink) {
  if (const auto* plain = std::get_if<huffman::StreamEncoding>(&enc.payload)) {
    detail::host_decode_span(plain->units, plain->total_bits, 0,
                             enc.num_symbols, enc.codebook, sink);
  } else if (const auto* gap = std::get_if<huffman::GapEncoding>(&enc.payload)) {
    detail::host_decode_span(gap->stream.units, gap->stream.total_bits, 0,
                             enc.num_symbols, enc.codebook, sink);
  } else {
    const auto& chunked = std::get<huffman::ChunkedEncoding>(enc.payload);
    for (std::uint32_t c = 0; c < chunked.num_chunks(); ++c) {
      detail::host_decode_span(chunked.units, chunked.total_bits,
                               chunked.chunk_bit_offset[c],
                               chunked.chunk_num_symbols[c], enc.codebook,
                               sink);
    }
  }
}

}  // namespace ohd::core
