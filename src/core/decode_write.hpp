// The decode-and-write phase shared by the self-synchronization and gap-array
// decoders, in both variants the paper evaluates:
//
//  * decode_write_direct — the ORIGINAL scheme: every thread decodes its
//    subsequence and stores each symbol straight to global memory at its
//    output index. Warp lanes write to locations ~one subsequence's output
//    apart, so stores are uncoalesced (one 32-byte transaction per symbol),
//    which is the §IV-B bottleneck.
//  * decode_write_staged — the paper's Algorithm 1: decode into a block-local
//    shared-memory buffer, then cooperatively copy the buffer to global
//    memory with fully coalesced stores. Iterates when the buffer is smaller
//    than the block's total output.
//  * decode_write_tuned — the paper's Algorithm 2 (shmem_tuner.hpp) drives
//    decode_write_staged with per-compression-ratio-class buffer sizes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/phase_timings.hpp"
#include "cudasim/exec.hpp"
#include "huffman/codebook.hpp"
#include "huffman/encoder.hpp"

namespace ohd::core {

/// Everything the decode+write phase needs, prepared by the synchronization
/// (self-sync) or counting (gap-array) phases.
struct WritePlan {
  const huffman::StreamEncoding* stream = nullptr;
  const huffman::Codebook* codebook = nullptr;

  /// Validated start bit per subsequence, plus a sentinel entry equal to
  /// total_bits. Size = num_subseqs + 1.
  std::span<const std::uint64_t> start_bit;
  /// Output index per subsequence, plus a sentinel equal to the total symbol
  /// count. Size = num_subseqs + 1.
  std::span<const std::uint64_t> out_index;

  /// Simulated device addresses for the coalescing model.
  std::uint64_t units_addr = 0;
  std::uint64_t start_bit_addr = 0;
  std::uint64_t out_index_addr = 0;
  std::uint64_t out_addr = 0;
  std::uint64_t table_addr = 0;

  /// Bytes per output symbol: 2 for the multi-byte decoders, 1 for the
  /// original 8-bit gap-array decoder.
  std::uint32_t symbol_bytes = 2;

  std::uint32_t num_subseqs() const {
    return static_cast<std::uint32_t>(start_bit.size() - 1);
  }
};

/// Original direct-store decode+write over all subsequences.
/// `record_table_reads` marks the original implementations, which fetch the
/// decode tables from global memory per codeword.
double decode_write_direct(cudasim::SimContext& ctx, const WritePlan& plan,
                           std::span<std::uint16_t> out,
                           const DecoderConfig& config,
                           bool record_table_reads);

/// Algorithm 1 with a fixed shared buffer of `buffer_symbols` u16 entries,
/// over the given sequences (pass an empty span for "all sequences").
/// Returns the simulated kernel seconds (body time + launch overhead).
double decode_write_staged(cudasim::SimContext& ctx, const WritePlan& plan,
                           std::span<std::uint16_t> out,
                           const DecoderConfig& config,
                           std::uint32_t buffer_symbols,
                           std::span<const std::uint32_t> sequence_ids = {});

/// Result of the Algorithm 2 tuned decode+write.
struct TunedDecodeResult {
  double tune_seconds = 0.0;          // classify + histogram + sort + readback
  double decode_write_seconds = 0.0;  // concurrent per-class kernels
  std::uint32_t t_high = 0;
  std::vector<std::uint32_t> class_freq;           // sequences per class
  std::vector<std::uint32_t> class_buffer_symbols; // buffer chosen per class
};

/// Algorithm 2: classify each sequence by compression ratio, then launch one
/// staged kernel per class with a class-specific buffer, on concurrent
/// streams.
TunedDecodeResult decode_write_tuned(cudasim::SimContext& ctx,
                                     const WritePlan& plan,
                                     std::span<std::uint16_t> out,
                                     const DecoderConfig& config);

}  // namespace ohd::core
