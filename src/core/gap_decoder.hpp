// Yamamoto et al.'s gap-array Huffman decoder (§III-C): the encoder stores,
// per subsequence, the bit offset of the first codeword starting in it, so no
// synchronization phase is needed. The decoder still needs a counting pass
// (each thread decodes its subsequence without writing) plus a prefix sum to
// produce output indices, then the decode+write phase — identical machinery
// to the self-sync decoder, which is what makes the paper's optimizations
// (§IV-B/§IV-C) apply to both.
#pragma once

#include "core/config.hpp"
#include "core/decode_result.hpp"
#include "cudasim/exec.hpp"
#include "huffman/codebook.hpp"
#include "huffman/encoder.hpp"

namespace ohd::core {

struct GapArrayOptions {
  bool staged_writes = true;       // §IV-B Algorithm 1
  bool tune_shared_memory = true;  // §IV-C Algorithm 2
  std::uint32_t fixed_buffer_symbols = 4096;
  /// Bytes per symbol written to global memory. The ORIGINAL gap-array
  /// decoder of [45] is 8-bit only (the paper emulates it by trimming
  /// quantization codes to one byte); the optimized decoder is multi-byte.
  std::uint32_t symbol_bytes = 2;

  static GapArrayOptions original_8bit() { return {false, false, 4096, 1}; }
  static GapArrayOptions optimized() { return {true, true, 4096, 2}; }
};

DecodeResult decode_gap_array(cudasim::SimContext& ctx,
                              const huffman::GapEncoding& enc,
                              const huffman::Codebook& cb,
                              const DecoderConfig& config = {},
                              const GapArrayOptions& options =
                                  GapArrayOptions::optimized());

}  // namespace ohd::core
