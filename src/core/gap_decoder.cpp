#include "core/gap_decoder.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/decode_write.hpp"
#include "core/subseq_decode.hpp"
#include "cudasim/algorithms.hpp"

namespace ohd::core {

DecodeResult decode_gap_array(cudasim::SimContext& ctx,
                              const huffman::GapEncoding& enc,
                              const huffman::Codebook& cb,
                              const DecoderConfig& config,
                              const GapArrayOptions& options) {
  DecodeResult result;
  const huffman::StreamEncoding& stream = enc.stream;
  result.symbols.assign(stream.num_symbols, 0);
  const std::uint32_t num_subseqs = stream.num_subseqs();
  if (num_subseqs == 0) return result;
  if (enc.gaps.size() != num_subseqs) {
    throw std::invalid_argument("gap array size mismatch");
  }

  const std::uint32_t S = config.threads_per_block;
  const std::uint32_t num_seqs = stream.num_seqs();
  const std::uint64_t subseq_bits = stream.geometry.subseq_bits();

  const std::uint64_t units_addr = ctx.reserve_address(stream.units.size() * 4);
  const std::uint64_t gaps_addr = ctx.reserve_address(enc.gaps.size());
  const std::uint64_t start_addr = ctx.reserve_address((num_subseqs + 1) * 8);
  const std::uint64_t count_addr = ctx.reserve_address(num_subseqs * 4);
  const std::uint64_t table_addr = ctx.reserve_address(1 << 18);

  // ---- Output-index phase: expand gaps to absolute starts and count the
  // symbols per subsequence (the "redundant decoding" of §IV-C), then prefix
  // sum. All charged to the same phase, as in Table II's "get output idx".
  const double t0 = ctx.timeline().total();
  std::vector<std::uint64_t> start_bit(num_subseqs + 1, 0);
  std::vector<std::uint32_t> sym_count(num_subseqs, 0);
  ctx.launch("gap_count", {num_seqs, S, 0}, [&](cudasim::BlockCtx& blk) {
    blk.for_each_thread([&](cudasim::ThreadCtx& t) {
      const std::uint64_t g = blk.global_tid(t);
      if (g >= num_subseqs) return;
      // Gap loads are dense bytes: fully coalesced.
      t.global_read(gaps_addr + g, 1);
      t.charge(4);
      const std::uint64_t start =
          std::min<std::uint64_t>(g * subseq_bits + enc.gaps[g],
                                  stream.total_bits);
      start_bit[g] = start;
      t.global_write(start_addr + g * 8, 8);
      // Counting needs the NEXT subsequence's start as the limit; recompute
      // it from the gap array rather than waiting on a barrier.
      const std::uint64_t limit =
          g + 1 < num_subseqs
              ? std::min<std::uint64_t>((g + 1) * subseq_bits +
                                            enc.gaps[g + 1],
                                        stream.total_bits)
              : stream.total_bits;
      if (g + 1 < num_subseqs) t.global_read(gaps_addr + g + 1, 1);
      const auto r =
          count_span(t, stream, units_addr, cb, start, limit, config);
      sym_count[g] = r.num_symbols;
      t.global_write(count_addr + g * 4, 4);
    });
  });
  start_bit[num_subseqs] = stream.total_bits;

  const std::vector<std::uint64_t> out_index =
      cudasim::device_exclusive_prefix_sum(ctx, sym_count, "output_index");
  result.phases.output_index_s = ctx.timeline().total() - t0;
  if (out_index.back() != stream.num_symbols) {
    throw std::logic_error("gap-array counting produced inconsistent totals");
  }

  // ---- Decode + write phase -------------------------------------------------
  WritePlan plan;
  plan.stream = &stream;
  plan.codebook = &cb;
  plan.start_bit = start_bit;
  plan.out_index = out_index;
  plan.units_addr = units_addr;
  plan.start_bit_addr = start_addr;
  plan.out_index_addr = ctx.reserve_address(out_index.size() * 8);
  plan.out_addr = ctx.reserve_address(stream.num_symbols * 2);
  plan.table_addr = table_addr;
  plan.symbol_bytes = options.symbol_bytes;

  if (!options.staged_writes) {
    result.phases.decode_write_s = decode_write_direct(
        ctx, plan, result.symbols, config, /*record_table_reads=*/true);
  } else if (options.tune_shared_memory) {
    const TunedDecodeResult tuned =
        decode_write_tuned(ctx, plan, result.symbols, config);
    result.phases.tune_s = tuned.tune_seconds;
    result.phases.decode_write_s = tuned.decode_write_seconds;
  } else {
    result.phases.decode_write_s = decode_write_staged(
        ctx, plan, result.symbols, config, options.fixed_buffer_symbols);
  }
  return result;
}

}  // namespace ohd::core
