#include "core/decode_write.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/subseq_decode.hpp"
#include "cudasim/algorithms.hpp"

namespace ohd::core {

namespace {

/// Number of subsequences handled by one block (= block_dim).
std::uint32_t seqs_in(const WritePlan& plan, const DecoderConfig& config) {
  const std::uint32_t s = config.threads_per_block;
  return (plan.num_subseqs() + s - 1) / s;
}

}  // namespace

double decode_write_direct(cudasim::SimContext& ctx, const WritePlan& plan,
                           std::span<std::uint16_t> out,
                           const DecoderConfig& config,
                           bool record_table_reads) {
  const std::uint32_t num_subseqs = plan.num_subseqs();
  if (num_subseqs == 0) return 0.0;
  const std::uint32_t block_dim = config.threads_per_block;
  const std::uint32_t grid = seqs_in(plan, config);

  const cudasim::DeviceSpec& spec = ctx.spec();
  const auto result = ctx.launch(
      "decode_write", {grid, block_dim, 0}, [&](cudasim::BlockCtx& blk) {
        blk.for_each_thread([&](cudasim::ThreadCtx& t) {
          const std::uint64_t g = blk.global_tid(t);
          if (g >= num_subseqs) return;
          // Load this thread's bounds (coalesced: consecutive lanes read
          // consecutive u64 entries).
          t.global_read(plan.start_bit_addr + g * 8, 16);
          t.global_read(plan.out_index_addr + g * 8, 8);
          t.charge(6);
          const std::uint64_t out_base = plan.out_index[g];
          // Store-stall ramp for this warp's scattered one-symbol stores:
          // footprint = 32 lanes x this thread's output bytes (neighbouring
          // lanes decode neighbouring subsequences, so their output sizes
          // are statistically alike). See DeviceSpec::scatter_* for the
          // calibration rationale.
          const std::uint64_t footprint =
              (plan.out_index[g + 1] - out_base) * plan.symbol_bytes *
              spec.warp_size;
          double ramp = 0.0;
          if (footprint > spec.scatter_window_lo_bytes) {
            ramp = std::min(
                1.0, static_cast<double>(footprint -
                                         spec.scatter_window_lo_bytes) /
                         (spec.scatter_window_hi_bytes -
                          spec.scatter_window_lo_bytes));
          }
          const auto stall_cycles = static_cast<std::uint64_t>(
              ramp * spec.scatter_penalty_cycles * spec.warp_size);
          decode_span(
              t, *plan.stream, plan.units_addr, *plan.codebook,
              plan.start_bit[g], plan.start_bit[g + 1], config,
              record_table_reads, plan.table_addr,
              [&](std::uint16_t sym, std::uint32_t k) {
                // Scattered store: lanes write ~one subsequence's output
                // apart, so each store is its own 32B transaction and, for
                // wide footprints, a store-queue stall.
                out[out_base + k] = sym;
                t.global_write(
                    plan.out_addr + (out_base + k) * plan.symbol_bytes,
                    plan.symbol_bytes);
                t.charge(1 + stall_cycles);
              });
        });
      });
  return result.timing.seconds;
}

namespace {

/// Shared implementation of Algorithm 1 for one launch over a set of
/// sequences. When `sequence_ids` is empty, block b decodes sequence b;
/// otherwise block b decodes sequence sequence_ids[b] (Algorithm 2's
/// compIndex indirection).
cudasim::KernelResult run_staged(cudasim::SimContext& ctx,
                                 const WritePlan& plan,
                                 std::span<std::uint16_t> out,
                                 const DecoderConfig& config,
                                 std::uint32_t buffer_symbols,
                                 std::span<const std::uint32_t> sequence_ids,
                                 bool timed) {
  const std::uint32_t num_subseqs = plan.num_subseqs();
  const std::uint32_t block_dim = config.threads_per_block;
  const std::uint32_t total_seqs = (num_subseqs + block_dim - 1) / block_dim;
  const std::uint32_t grid = sequence_ids.empty()
                                 ? total_seqs
                                 : static_cast<std::uint32_t>(
                                       sequence_ids.size());
  // A subsequence can hold at most subseq_bits one-bit codewords, so the
  // buffer must be able to hold one subsequence's worth of output or the
  // inner loop cannot make progress (see DESIGN.md).
  const std::uint64_t max_per_subseq = plan.stream->geometry.subseq_bits();
  if (buffer_symbols < max_per_subseq) {
    throw std::invalid_argument(
        "shared buffer smaller than one subsequence's worst-case output");
  }
  const std::uint32_t shmem_bytes = buffer_symbols * 2;

  const cudasim::LaunchConfig cfg{grid, block_dim, shmem_bytes};
  const auto body = [&](cudasim::BlockCtx& blk) {
    const std::uint32_t seq = sequence_ids.empty()
                                  ? blk.block_idx()
                                  : sequence_ids[blk.block_idx()];
    const std::uint64_t first = static_cast<std::uint64_t>(seq) * block_dim;
    auto* buffer = blk.shared_as<std::uint16_t>();

    // Per-thread registers loaded once (phase 0).
    std::vector<std::uint64_t> start(block_dim), end(block_dim);
    std::vector<std::uint64_t> bit_lo(block_dim), bit_hi(block_dim);
    std::uint64_t si = 0, ei = 0;
    blk.for_each_thread([&](cudasim::ThreadCtx& t) {
      if (!sequence_ids.empty() && t.tid() == 0) {
        // compIndex indirection load (Algorithm 2).
        t.global_read(plan.out_index_addr + blk.block_idx() * 4, 4);
      }
      const std::uint64_t g = first + t.tid();
      if (g >= num_subseqs) {
        start[t.tid()] = end[t.tid()] = ~0ull;
        return;
      }
      t.global_read(plan.out_index_addr + g * 8, 16);
      t.global_read(plan.start_bit_addr + g * 8, 16);
      t.charge(8);
      start[t.tid()] = plan.out_index[g];
      end[t.tid()] = plan.out_index[g + 1];
      bit_lo[t.tid()] = plan.start_bit[g];
      bit_hi[t.tid()] = plan.start_bit[g + 1];
      if (t.tid() == 0) si = plan.out_index[g];
      const std::uint64_t last =
          std::min<std::uint64_t>(first + block_dim, num_subseqs);
      if (g + 1 == last) ei = plan.out_index[last];
    });

    while (si < ei) {
      std::uint64_t temp_end = ei;
      // Decode phase: threads whose whole output fits in the buffer decode
      // into shared memory; a thread whose output does not fit caps tempEnd
      // at its own start (Algorithm 1, lines 8-12).
      blk.for_each_thread([&](cudasim::ThreadCtx& t) {
        const std::uint32_t i = t.tid();
        if (start[i] == ~0ull) return;
        t.charge(4);
        if (start[i] >= si && end[i] <= si + buffer_symbols) {
          decode_span(t, *plan.stream, plan.units_addr, *plan.codebook,
                      bit_lo[i], bit_hi[i], config,
                      /*record_table_reads=*/false, plan.table_addr,
                      [&](std::uint16_t sym, std::uint32_t k) {
                        buffer[start[i] - si + k] = sym;
                        t.shared_access();
                        t.charge(config.cost.staged_symbol_cycles);
                      });
          // Consumed: exclude from later iterations.
          start[i] = ~0ull;
        } else if (end[i] > si + buffer_symbols) {
          temp_end = std::min(temp_end, std::max(start[i], si));
        }
      });
      // Cooperative coalesced copy of buffer[0 .. tempEnd-si) to global
      // memory (Algorithm 1, line 13).
      const std::uint64_t count = temp_end - si;
      const std::uint64_t base = si;
      blk.for_each_thread([&](cudasim::ThreadCtx& t) {
        for (std::uint64_t k = t.tid(); k < count; k += block_dim) {
          out[base + k] = buffer[k];
          t.shared_access();
          t.global_write(plan.out_addr + (base + k) * plan.symbol_bytes,
                         plan.symbol_bytes);
          t.charge(config.cost.coop_copy_cycles);
        }
      });
      if (temp_end == si) {
        throw std::logic_error("staged decode made no progress");
      }
      si = temp_end;
      // Loop overhead: two block barriers (pipeline drains) plus the
      // shared-state update round per while-iteration.
      blk.charge_all(150);
    }
  };
  return timed ? ctx.launch("decode_write", cfg, body)
               : ctx.launch_untimed("decode_write", cfg, body);
}

}  // namespace

double decode_write_staged(cudasim::SimContext& ctx, const WritePlan& plan,
                           std::span<std::uint16_t> out,
                           const DecoderConfig& config,
                           std::uint32_t buffer_symbols,
                           std::span<const std::uint32_t> sequence_ids) {
  if (plan.num_subseqs() == 0) return 0.0;
  return run_staged(ctx, plan, out, config, buffer_symbols, sequence_ids,
                    /*timed=*/true)
      .timing.seconds;
}

TunedDecodeResult decode_write_tuned(cudasim::SimContext& ctx,
                                     const WritePlan& plan,
                                     std::span<std::uint16_t> out,
                                     const DecoderConfig& config) {
  TunedDecodeResult result;
  const std::uint32_t num_subseqs = plan.num_subseqs();
  if (num_subseqs == 0) return result;

  const std::uint32_t block_dim = config.threads_per_block;
  const std::uint32_t num_seqs = (num_subseqs + block_dim - 1) / block_dim;
  const std::uint32_t t_high =
      compute_t_high(ctx.spec(), config.threads_per_block);
  result.t_high = t_high;

  // --- Tuning (Algorithm 2, lines 1-11) ------------------------------------
  const double tune_t0 = ctx.timeline().total();

  // classifyCR kernel: one sequence holds seq_bits/8 compressed bytes and
  // produces count*2 output bytes; ratio r = out/in. Classes 1..T_high cover
  // (k-1, k]; class T_high+1 is the overflow group.
  std::vector<std::uint32_t> comp_class(num_seqs);
  const double in_bytes =
      static_cast<double>(plan.stream->geometry.seq_bits()) / 8.0;
  for (std::uint32_t j = 0; j < num_seqs; ++j) {
    const std::uint64_t lo = static_cast<std::uint64_t>(j) * block_dim;
    const std::uint64_t hi =
        std::min<std::uint64_t>(lo + block_dim, num_subseqs);
    const double syms = static_cast<double>(plan.out_index[hi] -
                                            plan.out_index[lo]);
    const double ratio = syms * 2.0 / in_bytes;
    const std::uint32_t k = static_cast<std::uint32_t>(
        std::min<double>(t_high + 1, std::max(1.0, std::ceil(ratio))));
    comp_class[j] = k;
  }
  {
    // Charge the classify kernel: stream the per-sequence counts once.
    const std::uint64_t idx_addr = plan.out_index_addr;
    ctx.launch("tune_classify",
               {std::max(1u, (num_seqs + 255) / 256), 256, 0},
               [&](cudasim::BlockCtx& blk) {
                 blk.for_each_thread([&](cudasim::ThreadCtx& t) {
                   const std::uint64_t j = blk.global_tid(t);
                   if (j >= num_seqs) return;
                   t.global_read(idx_addr + j * block_dim * 8, 16);
                   t.global_write(idx_addr + j * 4, 4);
                   t.charge(8);
                 });
               });
  }

  // Histogram of classes, then key-value sort (class, sequence id).
  result.class_freq =
      cudasim::device_histogram(ctx, comp_class, t_high + 2, "tune_histogram");
  std::vector<std::uint32_t> keys = comp_class;
  std::vector<std::uint32_t> seq_ids(num_seqs);
  for (std::uint32_t j = 0; j < num_seqs; ++j) seq_ids[j] = j;
  cudasim::device_radix_sort_pairs(ctx, keys, seq_ids, /*key_bits=*/8,
                                   "tune_sort");

  // Host-side prefix over the (tiny) histogram plus readback latency.
  ctx.timeline().add("tune_readback", config.tuner_fixed_overhead_s);
  std::vector<std::uint32_t> class_start(t_high + 3, 0);
  for (std::uint32_t k = 0; k + 1 < t_high + 3 && k < result.class_freq.size();
       ++k) {
    class_start[k + 1] = class_start[k] + result.class_freq[k];
  }
  result.tune_seconds = ctx.timeline().total() - tune_t0;

  // --- Per-class decode kernels (Algorithm 2, lines 12-14) -----------------
  // Buffer per class: one sequence's worth of input symbols per unit of
  // compression ratio (1024 for the paper's 2048-byte sequences); the
  // overflow class uses the architecture-specific size from the config.
  const std::uint32_t base_symbols = static_cast<std::uint32_t>(
      plan.stream->geometry.seq_bits() / 16);
  const std::uint32_t min_buffer =
      static_cast<std::uint32_t>(plan.stream->geometry.subseq_bits());
  result.class_buffer_symbols.assign(t_high + 2, 0);
  double bodies = 0.0;
  double max_critical = 0.0;
  bool launched_any = false;
  for (std::uint32_t k = 1; k <= t_high + 1; ++k) {
    const std::uint32_t freq =
        k < result.class_freq.size() ? result.class_freq[k] : 0;
    if (freq == 0) continue;
    const std::uint32_t buffer = std::max(
        min_buffer,
        k <= t_high ? base_symbols * k : config.overflow_buffer_symbols);
    result.class_buffer_symbols[k] = buffer;
    std::span<const std::uint32_t> ids(seq_ids.data() + class_start[k], freq);
    const auto r = run_staged(ctx, plan, out, config, buffer, ids,
                              /*timed=*/false);
    // Concurrent streams: machine-wide resources (issue slots, DRAM) add up
    // across the class kernels, but their critical paths overlap.
    bodies += r.timing.saturated_seconds;
    max_critical = std::max(max_critical, r.timing.critical_seconds);
    launched_any = true;
  }
  result.decode_write_seconds =
      std::max(bodies, max_critical) +
      (launched_any ? ctx.spec().launch_overhead_s : 0.0);
  ctx.timeline().add("decode_write", result.decode_write_seconds);
  return result;
}

}  // namespace ohd::core
