#include "core/naive_decoder.hpp"

#include "bitio/bit_reader.hpp"
#include "huffman/decode_step.hpp"

namespace ohd::core {

DecodeResult decode_naive_chunked(cudasim::SimContext& ctx,
                                  const huffman::ChunkedEncoding& enc,
                                  const huffman::Codebook& cb,
                                  const DecoderConfig& config) {
  DecodeResult result;
  result.symbols.assign(enc.num_symbols, 0);
  const std::uint32_t num_chunks = enc.num_chunks();
  if (num_chunks == 0) return result;

  const std::uint64_t units_addr = ctx.reserve_address(enc.units.size() * 4);
  const std::uint64_t out_addr = ctx.reserve_address(enc.num_symbols * 2);
  const std::uint64_t meta_addr = ctx.reserve_address(num_chunks * 12);

  const std::uint32_t block_dim = config.naive_block_dim;
  const std::uint32_t grid = (num_chunks + block_dim - 1) / block_dim;
  const CostModel& cost = config.cost;
  const huffman::DecodeTable& table = cb.decode_table();
  const bool use_lut = config.use_lut_decode && !table.empty();
  const bool use_multi = use_lut && config.use_multisym_lut;
  const std::uint32_t lut_bits = table.index_bits();

  const auto r = ctx.launch(
      "naive_decode", {grid, block_dim, 0}, [&](cudasim::BlockCtx& blk) {
        blk.for_each_thread([&](cudasim::ThreadCtx& t) {
          const std::uint64_t c = blk.global_tid(t);
          if (c >= num_chunks) return;
          t.global_read(meta_addr + c * 12, 12);  // offset + symbol count
          t.charge(8);
          bitio::BitReader reader(enc.units, enc.total_bits);
          reader.seek(enc.chunk_bit_offset[c]);
          const std::uint64_t out_base =
              c * static_cast<std::uint64_t>(enc.chunk_symbols);
          std::uint64_t last_unit = ~0ull;
          const std::uint32_t chunk_syms = enc.chunk_num_symbols[c];
          std::uint32_t k = 0;
          while (k < chunk_syms) {
            const std::uint64_t unit = reader.position() / 32;
            if (unit != last_unit) {
              t.global_read(units_addr + unit * 4, 4);
              last_unit = unit;
            }
            // Multi-symbol probe while a full batch cannot overrun the
            // chunk's symbol count; the chunk tail (< kMaxMultiSymbols
            // symbols) decodes one codeword at a time.
            if (use_multi &&
                k + huffman::DecodeTable::kMaxMultiSymbols <= chunk_syms) {
              const huffman::DecodedBatch batch =
                  huffman::decode_multi(reader, cb, table);
              for (std::uint64_t u = unit + 1;
                   u <= (reader.position() - 1) / 32; ++u) {
                t.global_read(units_addr + u * 4, 4);
                last_unit = u;
              }
              if (!batch.fallback) {
                // One serialized MultiEntry gather amortized over the batch.
                t.charge(cost.cycles_per_probe_multi_naive +
                         static_cast<std::uint64_t>(batch.count - 1) *
                             cost.cycles_per_extra_symbol_multi);
                for (std::uint32_t i = 0; i < batch.count; ++i) {
                  result.symbols[out_base + k] = batch.symbols[i];
                  t.global_write(out_addr + (out_base + k) * 2, 2);
                  ++k;
                }
              } else {
                // Slow probe: exactly the single-symbol LUT step (and like
                // it, an unassigned prefix still stores one symbol slot).
                const std::uint32_t ladder =
                    batch.bits > lut_bits ? batch.bits - lut_bits : 0;
                t.charge(cost.cycles_per_symbol_lut_naive +
                         static_cast<std::uint64_t>(ladder) *
                             cost.cycles_per_bit_naive);
                result.symbols[out_base + k] = batch.symbols[0];
                t.global_write(out_addr + (out_base + k) * 2, 2);
                ++k;
              }
              continue;
            }
            const huffman::DecodedSymbol d =
                use_lut ? huffman::decode_one_lut(reader, cb, table)
                        : huffman::decode_one(reader, cb);
            if (use_lut) {
              // One scattered LUT gather per symbol (thread-per-chunk means
              // no warp broadcast), plus a tree-style ladder walk for the
              // rare codewords longer than the index width.
              const std::uint32_t ladder =
                  d.len > lut_bits ? d.len - lut_bits : 0;
              t.charge(cost.cycles_per_symbol_lut_naive +
                       static_cast<std::uint64_t>(ladder) *
                           cost.cycles_per_bit_naive);
            } else {
              // Tree-walk decode: a dependent node fetch per bit (the tree
              // is small and cache-resident, so cycles but no transactions).
              t.charge(static_cast<std::uint64_t>(d.len) *
                           cost.cycles_per_bit_naive +
                       cost.cycles_per_symbol_naive);
            }
            result.symbols[out_base + k] = d.symbol;
            // One thread per chunk: warp lanes write one chunk apart, so
            // stores never coalesce.
            t.global_write(out_addr + (out_base + k) * 2, 2);
            ++k;
          }
        });
      });
  result.phases.decode_write_s = r.timing.seconds;
  return result;
}

}  // namespace ohd::core
