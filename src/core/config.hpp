// Tunable constants of the decoder implementations and of the simulated cost
// of their inner loops. The cycle constants are calibrated so the simulated
// V100 reproduces the throughput regimes of the paper's Table II / Table V
// (see EXPERIMENTS.md for the calibration procedure).
#pragma once

#include <cstdint>

#include "cudasim/device_spec.hpp"

namespace ohd::core {

/// Per-operation cycle costs charged by the decoder kernels.
struct CostModel {
  // Canonical first-code decoding (W&S / gap-array decoders): cost per bit
  // examined plus fixed per-codeword bookkeeping.
  std::uint32_t cycles_per_bit = 2;
  std::uint32_t cycles_per_symbol = 4;

  // Flat-LUT fast path (decode table resident in shared memory / L1 for the
  // fine-grained decoders): one probe resolves every codeword of length <=
  // the table's index width, so the per-symbol cost collapses to peek +
  // table read + skip. Codewords longer than the index width pay the probe
  // plus a ladder walk charged per extra bit at the family's per-bit rate.
  std::uint32_t cycles_per_symbol_lut = 5;

  // The naive cuSZ kernel runs one thread per coarse chunk, so a warp's 32
  // LUT probes scatter across the table (a serialized gather, not the
  // broadcast the fine decoders get) — the probe costs nearly a full
  // dependent-load round trip, calibrated against the same baseline rows as
  // the tree walk below.
  std::uint32_t cycles_per_symbol_lut_naive = 36;

  // Multi-symbol LUT probes (DecodeTable::MultiEntry): one 64-bit table read
  // retires up to kMaxMultiSymbols complete short codewords, so the probe
  // cost is paid once per BATCH and each symbol beyond the first adds only
  // the unpack/store increment. The probe is slightly dearer than the
  // single-symbol one (8-byte entry, batch bookkeeping); for the naive
  // decoder the serialized gather dominates either way, so amortizing it
  // over a batch is where that family gains.
  std::uint32_t cycles_per_probe_multi = 6;
  std::uint32_t cycles_per_probe_multi_naive = 38;
  std::uint32_t cycles_per_extra_symbol_multi = 1;

  // cuSZ's naive decoder walks a serialized Huffman tree one bit at a time
  // (a DEPENDENT node fetch + branch per bit; the tree stays L1/L2-resident
  // so no global transactions are charged, but each hop serializes on cache
  // latency — calibrated against the paper's ~26 GB/s baseline row).
  std::uint32_t cycles_per_bit_naive = 12;
  std::uint32_t cycles_per_symbol_naive = 10;

  // Busy-wait iteration cost in the ORIGINAL intra-sequence synchronization
  // (flag check + barrier participation), and the cost of the optimized
  // variant's __all_sync vote.
  std::uint32_t sync_check_cycles = 4;
  std::uint32_t all_sync_cycles = 2;

  // Fixed per-thread cost of staging one symbol through shared memory in the
  // optimized decode+write kernel (shared store + index arithmetic).
  std::uint32_t staged_symbol_cycles = 2;
  // Per-element cost of the cooperative shared->global copy.
  std::uint32_t coop_copy_cycles = 1;
};

/// Geometry and policy knobs of the decoders.
struct DecoderConfig {
  // W&S stream geometry (also used by the gap-array decoder): 4 units of 32
  // bits per subsequence, 128 subsequences (= threads) per sequence (= block),
  // exactly as in the paper (§III-B, footnote 2).
  std::uint32_t units_per_subseq = 4;
  std::uint32_t threads_per_block = 128;

  // cuSZ baseline: symbols per coarse chunk, one thread per chunk.
  std::uint32_t chunk_symbols = 1024;
  std::uint32_t naive_block_dim = 256;

  // Shared-memory tuning (Algorithm 2): fixed host-side overhead of the
  // tuning round trip (histogram readback + kernel argument setup), and the
  // buffer used for the overflow class (compression ratio > T_high); the
  // paper found 3584 symbols optimal on V100 (§IV-C).
  double tuner_fixed_overhead_s = 8e-6;
  std::uint32_t overflow_buffer_symbols = 3584;

  // Decode-path selection for ALL decoder families: the flat-LUT fast path
  // (huffman::DecodeTable) is the default; set false to force the legacy
  // bit-by-bit first-code ladder (decode_one), e.g. for A/B benchmarks.
  bool use_lut_decode = true;

  // Multi-symbol LUT probes on top of the flat LUT (requires
  // use_lut_decode): each probe retires up to DecodeTable::kMaxMultiSymbols
  // complete short codewords. Decoded output is bit-identical to the
  // single-symbol paths; only the charged cycles (cycles_per_probe_multi*)
  // differ. Applies to the OPTIMIZED variants and the naive baseline; the
  // Original decoders fetch tables from global memory per codeword, where
  // scattering across the wider MultiEntry array wins nothing, so they
  // keep the single-symbol probe. Set false to A/B the single-symbol LUT.
  bool use_multisym_lut = true;

  // Fused decode->dequantize->reconstruct write path (sz::decompress and the
  // pipeline chunk decode): stream decoded quantization codes through the
  // 1-D Lorenzo sink straight into the destination float buffer instead of
  // staging a quant-code vector, an int64 lattice vector, and a separate
  // reconstruct pass. Floats are exactly identical; rank-2/3 blobs always
  // use the staged path (their predictor needs random access to neighbors).
  bool use_fused_write = true;

  CostModel cost;
};

/// The paper's T_high derivation (§IV-C): the largest per-block shared buffer
/// that still allows >= 25% occupancy, divided by 2048 bytes (the shared
/// buffer needed per unit compression ratio: one sequence holds 2048 input
/// bytes, i.e. 1024 u16 symbols at ratio 1).
std::uint32_t compute_t_high(const cudasim::DeviceSpec& spec,
                             std::uint32_t threads_per_block);

}  // namespace ohd::core
