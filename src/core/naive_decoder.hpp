// cuSZ's baseline coarse-grained Huffman decoder (§III-A): the stream is
// split into fixed-symbol-count chunks and each chunk is decoded sequentially
// by ONE thread, walking the Huffman tree bit by bit. Parallelism is limited
// to the number of chunks, per-thread work is long and serial, and stores are
// uncoalesced — the reference point the paper's decoders are measured
// against.
#pragma once

#include "core/config.hpp"
#include "core/decode_result.hpp"
#include "cudasim/exec.hpp"
#include "huffman/codebook.hpp"
#include "huffman/encoder.hpp"

namespace ohd::core {

DecodeResult decode_naive_chunked(cudasim::SimContext& ctx,
                                  const huffman::ChunkedEncoding& enc,
                                  const huffman::Codebook& cb,
                                  const DecoderConfig& config = {});

}  // namespace ohd::core
