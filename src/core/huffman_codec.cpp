#include "core/huffman_codec.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/gap_decoder.hpp"
#include "core/naive_decoder.hpp"
#include "core/selfsync_decoder.hpp"

namespace ohd::core {

std::string method_name(Method m) {
  switch (m) {
    case Method::CuszNaive: return "baseline cuSZ";
    case Method::SelfSyncOriginal: return "ori. self-sync";
    case Method::SelfSyncOptimized: return "opt. self-sync";
    case Method::GapArrayOriginal8Bit: return "ori. gap-array 8-bit";
    case Method::GapArrayOptimized: return "opt. gap-array";
  }
  return "unknown";
}

std::uint64_t EncodedStream::compressed_bytes() const {
  std::uint64_t payload = 0;
  if (const auto* chunked = std::get_if<huffman::ChunkedEncoding>(&this->payload)) {
    payload = chunked->payload_bytes();
  } else if (const auto* plain =
                 std::get_if<huffman::StreamEncoding>(&this->payload)) {
    payload = plain->payload_bytes();
  } else if (const auto* gap = std::get_if<huffman::GapEncoding>(&this->payload)) {
    payload = gap->payload_bytes();
  }
  return payload + codebook.serialized_bytes();
}

std::uint64_t EncodedStream::quant_code_bytes() const {
  return num_symbols * (method == Method::GapArrayOriginal8Bit ? 1 : 2);
}

namespace {

std::vector<std::uint16_t> trim_to_8bit(std::span<const std::uint16_t> codes) {
  // Most quantization codes concentrate around the radius (the zero-error
  // code); the paper trims them to one byte for the 8-bit baseline. We keep
  // the low byte, which preserves the concentration.
  std::vector<std::uint16_t> out(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(codes[i] & 0xFF);
  }
  return out;
}

/// Payload construction shared by the private- and injected-codebook entry
/// points: `enc.codebook` must already be set and cover every code.
void encode_payload(EncodedStream& enc, std::span<const std::uint16_t> codes,
                    const DecoderConfig& config) {
  huffman::StreamGeometry geometry;
  geometry.units_per_subseq = config.units_per_subseq;
  geometry.subseqs_per_seq = config.threads_per_block;
  switch (enc.method) {
    case Method::CuszNaive:
      enc.payload =
          huffman::encode_chunked(codes, enc.codebook, config.chunk_symbols);
      break;
    case Method::SelfSyncOriginal:
    case Method::SelfSyncOptimized:
      enc.payload = huffman::encode_plain(codes, enc.codebook, geometry);
      break;
    case Method::GapArrayOriginal8Bit:
    case Method::GapArrayOptimized:
      enc.payload = huffman::encode_gap(codes, enc.codebook, geometry);
      break;
  }
}

}  // namespace

EncodedStream encode_for_method(Method method,
                                std::span<const std::uint16_t> codes,
                                std::uint32_t alphabet_size,
                                const DecoderConfig& config) {
  EncodedStream enc;
  enc.method = method;
  enc.num_symbols = codes.size();
  if (method == Method::GapArrayOriginal8Bit) {
    const std::vector<std::uint16_t> trimmed = trim_to_8bit(codes);
    enc.codebook = huffman::Codebook::from_data(trimmed, 256);
    encode_payload(enc, trimmed, config);
  } else {
    enc.codebook = huffman::Codebook::from_data(codes, alphabet_size);
    encode_payload(enc, codes, config);
  }
  return enc;
}

EncodedStream encode_with_codebook(Method method,
                                   std::span<const std::uint16_t> codes,
                                   const huffman::Codebook& codebook,
                                   const DecoderConfig& config) {
  if (method == Method::GapArrayOriginal8Bit) {
    throw std::invalid_argument(
        "the 8-bit gap-array baseline trims codes to a private alphabet and "
        "cannot encode against an injected codebook");
  }
  for (std::uint16_t s : codes) {
    if (s >= codebook.alphabet_size() || codebook.code(s).len == 0) {
      throw std::invalid_argument(
          "symbol " + std::to_string(s) +
          " has no codeword in the injected codebook");
    }
  }
  EncodedStream enc;
  enc.method = method;
  enc.num_symbols = codes.size();
  enc.codebook = codebook;
  encode_payload(enc, codes, config);
  return enc;
}

DecodeResult decode(cudasim::SimContext& ctx, const EncodedStream& enc,
                    const DecoderConfig& config) {
  switch (enc.method) {
    case Method::CuszNaive:
      return decode_naive_chunked(
          ctx, std::get<huffman::ChunkedEncoding>(enc.payload), enc.codebook,
          config);
    case Method::SelfSyncOriginal:
      return decode_selfsync(ctx,
                             std::get<huffman::StreamEncoding>(enc.payload),
                             enc.codebook, config, SelfSyncOptions::original());
    case Method::SelfSyncOptimized:
      return decode_selfsync(ctx,
                             std::get<huffman::StreamEncoding>(enc.payload),
                             enc.codebook, config,
                             SelfSyncOptions::optimized());
    case Method::GapArrayOriginal8Bit:
      return decode_gap_array(ctx, std::get<huffman::GapEncoding>(enc.payload),
                              enc.codebook, config,
                              GapArrayOptions::original_8bit());
    case Method::GapArrayOptimized:
      return decode_gap_array(ctx, std::get<huffman::GapEncoding>(enc.payload),
                              enc.codebook, config,
                              GapArrayOptions::optimized());
  }
  throw std::invalid_argument("unknown decode method");
}

}  // namespace ohd::core
