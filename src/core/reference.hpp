// Reference (ground-truth) implementations used to validate the parallel
// decoders: a sequential decode that tracks subsequence boundaries exactly as
// the synchronization phases must discover them, and checkers that compare a
// decoder's internal state against it. Exposed as library API so downstream
// users can validate custom encoder integrations the same way the test suite
// does.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "huffman/codebook.hpp"
#include "huffman/encoder.hpp"

namespace ohd::core {

/// Ground truth for a plain stream: per-subsequence validated start bits
/// (plus the total_bits sentinel) and symbol counts, computed by one
/// sequential decode pass.
struct ReferenceSync {
  std::vector<std::uint64_t> start_bit;
  std::vector<std::uint32_t> sym_count;
  std::vector<std::uint16_t> symbols;
};

ReferenceSync reference_sync(const huffman::StreamEncoding& enc,
                             const huffman::Codebook& cb);

/// Compares start bits and counts against the reference; returns an empty
/// string on success, otherwise a human-readable description of the first
/// mismatch.
std::string check_sync_against_reference(
    const ReferenceSync& reference,
    std::span<const std::uint64_t> start_bit,
    std::span<const std::uint32_t> sym_count);

/// Validates that a gap array is consistent with the stream: every gap must
/// point at a codeword boundary of the sequential decode (or at end of
/// stream for trailing empty subsequences). Returns "" or a description.
std::string check_gap_array(const huffman::GapEncoding& enc,
                            const huffman::Codebook& cb);

}  // namespace ohd::core
