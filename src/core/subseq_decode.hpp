// The per-thread subsequence decode primitive shared by the synchronization,
// counting, and decode+write kernels. Decodes every codeword whose start bit
// lies in [start, limit), charging the simulated lane for bit examination,
// per-symbol bookkeeping, input unit fetches (one global read per 32-bit unit
// crossed), and — for the ORIGINAL decoders, which do not keep the decode
// tables cache-resident — per-symbol table lookups.
#pragma once

#include <cstdint>

#include "bitio/bit_reader.hpp"
#include "core/config.hpp"
#include "cudasim/exec.hpp"
#include "huffman/codebook.hpp"
#include "huffman/decode_step.hpp"
#include "huffman/encoder.hpp"

namespace ohd::core {

struct SubseqDecodeResult {
  std::uint64_t end_bit = 0;      // first codeword start >= limit
  std::uint32_t num_symbols = 0;  // codewords starting in [start, limit)
};

/// Decodes codewords starting in [start, limit) and invokes
/// `on_symbol(symbol, k)` for the k-th of them. `units_addr` is the simulated
/// device address of the unit array (coalescing model); `table_addr` the
/// address of the decode tables (only charged when record_table_reads).
template <typename OnSymbol>
SubseqDecodeResult decode_span(cudasim::ThreadCtx& t,
                               const huffman::StreamEncoding& enc,
                               std::uint64_t units_addr,
                               const huffman::Codebook& cb, std::uint64_t start,
                               std::uint64_t limit, const CostModel& cost,
                               bool record_table_reads,
                               std::uint64_t table_addr, OnSymbol&& on_symbol) {
  SubseqDecodeResult res;
  res.end_bit = start;
  if (start >= limit || start >= enc.total_bits) {
    res.end_bit = start;
    return res;
  }

  bitio::BitReader reader(enc.units, enc.total_bits);
  reader.seek(start);
  std::uint64_t last_unit_fetched = ~0ull;

  while (reader.position() < limit && reader.position() < enc.total_bits) {
    const std::uint64_t sym_start = reader.position();
    // Fetch every 32-bit unit the codeword may touch (kept in a register in
    // the real kernel; refetched only when crossing a unit boundary).
    const std::uint64_t first_unit = sym_start / 32;
    if (first_unit != last_unit_fetched) {
      t.global_read(units_addr + first_unit * 4, 4);
      last_unit_fetched = first_unit;
    }
    const huffman::DecodedSymbol d = huffman::decode_one(reader, cb);
    const std::uint64_t end_unit = (reader.position() - 1) / 32;
    if (end_unit != last_unit_fetched) {
      t.global_read(units_addr + end_unit * 4, 4);
      last_unit_fetched = end_unit;
    }
    t.charge(static_cast<std::uint64_t>(d.len) * cost.cycles_per_bit +
             cost.cycles_per_symbol);
    if (record_table_reads) {
      // Two dependent lookups per codeword (length row + symbol entry),
      // scattered by symbol value.
      t.global_read(table_addr + d.len * 64, 8);
      t.global_read(table_addr + 4096 + static_cast<std::uint64_t>(d.symbol) * 2,
                    2);
    }
    if (!d.valid) {
      // Unassigned prefix: only reachable while desynchronized (or on the
      // zero padding of an incomplete code). Keep scanning; synchronization
      // logic treats the consumed bits like any other codeword.
      res.end_bit = reader.position();
      continue;
    }
    on_symbol(d.symbol, res.num_symbols);
    ++res.num_symbols;
    res.end_bit = reader.position();
  }
  return res;
}

/// Count-only variant.
inline SubseqDecodeResult count_span(cudasim::ThreadCtx& t,
                                     const huffman::StreamEncoding& enc,
                                     std::uint64_t units_addr,
                                     const huffman::Codebook& cb,
                                     std::uint64_t start, std::uint64_t limit,
                                     const CostModel& cost,
                                     bool record_table_reads = false,
                                     std::uint64_t table_addr = 0) {
  return decode_span(t, enc, units_addr, cb, start, limit, cost,
                     record_table_reads, table_addr,
                     [](std::uint16_t, std::uint32_t) {});
}

}  // namespace ohd::core
