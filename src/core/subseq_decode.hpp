// The per-thread subsequence decode primitive shared by the synchronization,
// counting, and decode+write kernels. Decodes every codeword whose start bit
// lies in [start, limit), charging the simulated lane for bit examination,
// per-symbol bookkeeping, input unit fetches (one global read per 32-bit unit
// crossed), and — for the ORIGINAL decoders, which do not keep the decode
// tables cache-resident — per-symbol table lookups.
//
// Three decode paths, selected by DecoderConfig::use_lut_decode /
// use_multisym_lut:
//  * multi-symbol LUT (default): peek(K) -> MultiEntry probe -> skip(bits),
//    retiring up to DecodeTable::kMaxMultiSymbols complete codewords per
//    probe. Used only while a whole probe window fits below the span limit
//    (and the stream end), so no symbol starting at or past the limit is
//    ever retired; the tail of the span falls back to single-symbol steps.
//  * LUT: peek(K) -> DecodeTable probe -> skip(len). One table read per
//    symbol; codewords longer than K add a first-code ladder walk charged
//    per extra bit.
//  * legacy: the bit-by-bit first-code walk (decode_one), charged per bit
//    examined, with two dependent scattered table reads per codeword when
//    the original implementations fetch tables from global memory.
// All three consume identical bits and emit identical symbols; only the
// charged cycles differ.
#pragma once

#include <cstdint>

#include "bitio/bit_reader.hpp"
#include "core/config.hpp"
#include "cudasim/exec.hpp"
#include "huffman/codebook.hpp"
#include "huffman/decode_step.hpp"
#include "huffman/encoder.hpp"

namespace ohd::core {

struct SubseqDecodeResult {
  std::uint64_t end_bit = 0;      // first codeword start >= limit
  std::uint32_t num_symbols = 0;  // codewords starting in [start, limit)
};

/// Decodes codewords starting in [start, limit) and invokes
/// `on_symbol(symbol, k)` for the k-th of them. `units_addr` is the simulated
/// device address of the unit array (coalescing model); `table_addr` the
/// address of the decode tables (only charged when record_table_reads).
template <typename OnSymbol>
SubseqDecodeResult decode_span(cudasim::ThreadCtx& t,
                               const huffman::StreamEncoding& enc,
                               std::uint64_t units_addr,
                               const huffman::Codebook& cb, std::uint64_t start,
                               std::uint64_t limit,
                               const DecoderConfig& config,
                               bool record_table_reads,
                               std::uint64_t table_addr, OnSymbol&& on_symbol) {
  SubseqDecodeResult res;
  res.end_bit = start;
  if (start >= limit || start >= enc.total_bits) {
    res.end_bit = start;
    return res;
  }

  const CostModel& cost = config.cost;
  const huffman::DecodeTable& table = cb.decode_table();
  const bool use_lut = config.use_lut_decode && !table.empty();
  // The multi-symbol batch is an OPTIMIZED-variant feature: the original
  // decoders (record_table_reads) fetch tables from global memory per
  // codeword, and scattering their per-codeword gathers across the 32 KiB
  // MultiEntry array costs more transactions than the batch saves — exactly
  // the effect that makes the paper pair table optimizations with
  // shared-memory residence. They keep the single-symbol probe.
  const bool use_multi =
      use_lut && config.use_multisym_lut && !record_table_reads;
  const std::uint32_t lut_bits = table.index_bits();
  // Symbols are decoded iff they start below both bounds; a multi probe may
  // only run while its whole K-bit window sits below this, so every symbol
  // it retires starts strictly inside the span.
  const std::uint64_t hard_limit = std::min(limit, enc.total_bits);

  bitio::BitReader reader(enc.units, enc.total_bits);
  reader.seek(start);
  std::uint64_t last_unit_fetched = ~0ull;

  while (reader.position() < hard_limit) {
    const std::uint64_t sym_start = reader.position();
    // Fetch every 32-bit unit the codeword may touch (kept in a register in
    // the real kernel — the buffered BitReader mirrors exactly this —
    // refetched only when crossing a unit boundary).
    const std::uint64_t first_unit = sym_start / 32;
    if (first_unit != last_unit_fetched) {
      t.global_read(units_addr + first_unit * 4, 4);
      last_unit_fetched = first_unit;
    }

    if (use_multi && sym_start + lut_bits <= hard_limit) [[likely]] {
      // Multi-symbol probe: identical bits and symbols to repeated
      // single-symbol steps, one shared/L1-resident table read per batch.
      const huffman::DecodedBatch batch =
          huffman::decode_multi(reader, cb, table);
      for (std::uint64_t u = first_unit + 1;
           u <= (reader.position() - 1) / 32; ++u) {
        t.global_read(units_addr + u * 4, 4);
        last_unit_fetched = u;
      }
      if (!batch.fallback) {
        t.charge(cost.cycles_per_probe_multi +
                 static_cast<std::uint64_t>(batch.count - 1) *
                     cost.cycles_per_extra_symbol_multi);
      } else {
        // Slow probe (long codeword / unassigned prefix): charged exactly
        // like the single-symbol LUT step below.
        const std::uint32_t ladder_bits =
            batch.bits > lut_bits ? batch.bits - lut_bits : 0;
        t.charge(cost.cycles_per_symbol_lut +
                 static_cast<std::uint64_t>(ladder_bits) *
                     cost.cycles_per_bit);
      }
      for (std::uint32_t i = 0; i < batch.count; ++i) {
        on_symbol(batch.symbols[i], res.num_symbols);
        ++res.num_symbols;
      }
      res.end_bit = reader.position();
      continue;
    }

    // The LUT probe index doubles as the table-read address for the
    // coalescing model; peeking it again here is free (buffered).
    const std::uint32_t window =
        use_lut && record_table_reads ? reader.peek(lut_bits) : 0;
    const huffman::DecodedSymbol d =
        use_lut ? huffman::decode_one_lut(reader, cb, table)
                : huffman::decode_one(reader, cb);
    const std::uint64_t end_unit = (reader.position() - 1) / 32;
    if (end_unit != last_unit_fetched) {
      t.global_read(units_addr + end_unit * 4, 4);
      last_unit_fetched = end_unit;
    }
    if (use_lut) {
      const std::uint32_t ladder_bits = d.len > lut_bits ? d.len - lut_bits : 0;
      t.charge(cost.cycles_per_symbol_lut +
               static_cast<std::uint64_t>(ladder_bits) * cost.cycles_per_bit);
      if (record_table_reads) {
        // One flat-table probe per codeword, scattered by the stream window.
        t.global_read(table_addr + static_cast<std::uint64_t>(window) * 4, 4);
        if (ladder_bits > 0) {
          // Ladder walk past the table: the legacy pair of dependent reads
          // (length row + symbol entry), laid out after the LUT.
          const std::uint64_t ladder_addr = table_addr + (4ull << lut_bits);
          t.global_read(ladder_addr + d.len * 64, 8);
          t.global_read(
              ladder_addr + 4096 +
                  static_cast<std::uint64_t>(d.symbol) * 2,
              2);
        }
      }
    } else {
      t.charge(static_cast<std::uint64_t>(d.len) * cost.cycles_per_bit +
               cost.cycles_per_symbol);
      if (record_table_reads) {
        // Two dependent lookups per codeword (length row + symbol entry),
        // scattered by symbol value.
        t.global_read(table_addr + d.len * 64, 8);
        t.global_read(
            table_addr + 4096 + static_cast<std::uint64_t>(d.symbol) * 2, 2);
      }
    }
    if (!d.valid) {
      // Unassigned prefix: only reachable while desynchronized (or on the
      // zero padding of an incomplete code). Keep scanning; synchronization
      // logic treats the consumed bits like any other codeword.
      res.end_bit = reader.position();
      continue;
    }
    on_symbol(d.symbol, res.num_symbols);
    ++res.num_symbols;
    res.end_bit = reader.position();
  }
  return res;
}

/// Count-only variant.
inline SubseqDecodeResult count_span(cudasim::ThreadCtx& t,
                                     const huffman::StreamEncoding& enc,
                                     std::uint64_t units_addr,
                                     const huffman::Codebook& cb,
                                     std::uint64_t start, std::uint64_t limit,
                                     const DecoderConfig& config,
                                     bool record_table_reads = false,
                                     std::uint64_t table_addr = 0) {
  return decode_span(t, enc, units_addr, cb, start, limit, config,
                     record_table_reads, table_addr,
                     [](std::uint16_t, std::uint32_t) {});
}

}  // namespace ohd::core
