// Top-level facade pairing each evaluated decoding method with the encoder
// layout it requires. This is the entry point the cuSZ pipeline (src/sz) and
// the benches use; the individual decoders remain available for fine-grained
// experiments.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>

#include "core/config.hpp"
#include "core/decode_result.hpp"
#include "cudasim/exec.hpp"
#include "huffman/codebook.hpp"
#include "huffman/encoder.hpp"

namespace ohd::core {

/// The five decoding solutions of the paper's Tables IV/V.
enum class Method {
  CuszNaive,            // baseline cuSZ coarse-grained decoder
  SelfSyncOriginal,     // Weissenberger & Schmidt, as published
  SelfSyncOptimized,    // + §IV-A/B/C optimizations
  GapArrayOriginal8Bit, // Yamamoto et al., 8-bit symbols (paper's emulation)
  GapArrayOptimized,    // + §IV-B/C optimizations, multi-byte
};

std::string method_name(Method m);

/// Quantization codes encoded in the layout `method` decodes.
struct EncodedStream {
  Method method = Method::GapArrayOptimized;
  huffman::Codebook codebook;
  std::variant<huffman::ChunkedEncoding, huffman::StreamEncoding,
               huffman::GapEncoding>
      payload;
  std::uint64_t num_symbols = 0;

  /// Compressed bytes including the serialized codebook and any sidecar
  /// (chunk offsets, gap array).
  std::uint64_t compressed_bytes() const;
  /// Bytes of the uncompressed quantization codes this stream represents
  /// (paper's Table II/V reference size). The 8-bit method is accounted at
  /// one byte per code, exactly like the paper, which then doubles its
  /// compression ratio for comparison.
  std::uint64_t quant_code_bytes() const;
};

/// Encodes `codes` (values < alphabet_size) for the given method. For
/// Method::GapArrayOriginal8Bit the codes are first trimmed to 8 bits
/// (paper §V-A2: "we estimate its performance by trimming each multi-byte
/// quantization code to a single byte").
EncodedStream encode_for_method(Method method,
                                std::span<const std::uint16_t> codes,
                                std::uint32_t alphabet_size,
                                const DecoderConfig& config = {});

/// Encodes `codes` with an INJECTED codebook instead of one built from the
/// chunk's own histogram — the shared-codebook path, where one field-level
/// canonical book serves many chunks. Every code must have a codeword in
/// `codebook` (throws std::invalid_argument otherwise, before any encoding).
/// Method::GapArrayOriginal8Bit is rejected: its 8-bit trimming changes the
/// alphabet, so it can only use a private book.
EncodedStream encode_with_codebook(Method method,
                                   std::span<const std::uint16_t> codes,
                                   const huffman::Codebook& codebook,
                                   const DecoderConfig& config = {});

/// Decodes with the method's decoder. For GapArrayOriginal8Bit the decoded
/// symbols are the trimmed 8-bit codes.
DecodeResult decode(cudasim::SimContext& ctx, const EncodedStream& enc,
                    const DecoderConfig& config = {});

}  // namespace ohd::core
