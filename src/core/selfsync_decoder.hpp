// Weißenberger & Schmidt's self-synchronization Huffman decoder (§III-B),
// with the paper's architectural optimizations (§IV) selectable so benches
// can evaluate the original and optimized variants and every ablation in
// between:
//
//   phase 1  intra-sequence synchronization  (early_exit toggles §IV-A)
//   phase 2  inter-sequence synchronization
//   phase 3  output indices (device prefix sum over per-subsequence counts)
//   phase 4  decode + write (staged_writes toggles §IV-B's Algorithm 1,
//            tune_shared_memory toggles §IV-C's Algorithm 2)
#pragma once

#include "core/config.hpp"
#include "core/decode_result.hpp"
#include "cudasim/exec.hpp"
#include "huffman/codebook.hpp"
#include "huffman/encoder.hpp"

namespace ohd::core {

struct SelfSyncOptions {
  bool early_exit = true;          // §IV-A __all_sync early kernel exit
  bool staged_writes = true;       // §IV-B shared-memory staged decode+write
  bool tune_shared_memory = true;  // §IV-C online buffer tuning (Algorithm 2)
  // Buffer used when staged_writes && !tune_shared_memory (Figure 3 sweeps).
  std::uint32_t fixed_buffer_symbols = 4096;

  static SelfSyncOptions original() { return {false, false, false, 4096}; }
  static SelfSyncOptions optimized() { return {true, true, true, 4096}; }
};

/// Synchronization output, exposed for tests and for reuse by benches that
/// sweep only the decode+write phase (Figure 3 / Table I).
struct SyncInfo {
  /// Validated absolute start bit per subsequence, plus sentinel total_bits.
  std::vector<std::uint64_t> start_bit;
  /// Symbols starting in each subsequence.
  std::vector<std::uint32_t> sym_count;
  double intra_seconds = 0.0;
  double inter_seconds = 0.0;
  std::uint32_t inter_iterations = 0;
};

/// Runs phases 1-2 only.
SyncInfo selfsync_synchronize(cudasim::SimContext& ctx,
                              const huffman::StreamEncoding& enc,
                              const huffman::Codebook& cb,
                              const DecoderConfig& config, bool early_exit);

/// Full decode.
DecodeResult decode_selfsync(cudasim::SimContext& ctx,
                             const huffman::StreamEncoding& enc,
                             const huffman::Codebook& cb,
                             const DecoderConfig& config = {},
                             const SelfSyncOptions& options =
                                 SelfSyncOptions::optimized());

}  // namespace ohd::core
