#include "core/reference.hpp"

#include <sstream>

#include "bitio/bit_reader.hpp"
#include "huffman/decode_step.hpp"

namespace ohd::core {

ReferenceSync reference_sync(const huffman::StreamEncoding& enc,
                             const huffman::Codebook& cb) {
  ReferenceSync ref;
  const std::uint64_t subseq_bits = enc.geometry.subseq_bits();
  const std::uint32_t num_subseqs = enc.num_subseqs();
  ref.sym_count.assign(num_subseqs, 0);
  ref.start_bit.assign(num_subseqs + 1, enc.total_bits);
  ref.symbols.reserve(enc.num_symbols);

  bitio::BitReader reader(enc.units, enc.total_bits);
  std::uint32_t next_boundary = 0;
  while (reader.position() < enc.total_bits) {
    const std::uint64_t pos = reader.position();
    while (next_boundary < num_subseqs &&
           static_cast<std::uint64_t>(next_boundary) * subseq_bits <= pos) {
      ref.start_bit[next_boundary++] = pos;
    }
    const huffman::DecodedSymbol d = huffman::decode_one(reader, cb);
    if (d.valid) {
      ref.symbols.push_back(d.symbol);
      if (next_boundary > 0) ++ref.sym_count[next_boundary - 1];
    }
  }
  ref.start_bit[num_subseqs] = enc.total_bits;
  return ref;
}

std::string check_sync_against_reference(
    const ReferenceSync& reference, std::span<const std::uint64_t> start_bit,
    std::span<const std::uint32_t> sym_count) {
  std::ostringstream msg;
  if (start_bit.size() != reference.start_bit.size()) {
    msg << "start_bit size " << start_bit.size() << " != reference "
        << reference.start_bit.size();
    return msg.str();
  }
  if (sym_count.size() != reference.sym_count.size()) {
    msg << "sym_count size " << sym_count.size() << " != reference "
        << reference.sym_count.size();
    return msg.str();
  }
  for (std::size_t i = 0; i < start_bit.size(); ++i) {
    if (start_bit[i] != reference.start_bit[i]) {
      msg << "start_bit[" << i << "] = " << start_bit[i]
          << ", reference = " << reference.start_bit[i];
      return msg.str();
    }
  }
  for (std::size_t i = 0; i < sym_count.size(); ++i) {
    if (sym_count[i] != reference.sym_count[i]) {
      msg << "sym_count[" << i << "] = " << sym_count[i]
          << ", reference = " << reference.sym_count[i];
      return msg.str();
    }
  }
  return {};
}

std::string check_gap_array(const huffman::GapEncoding& enc,
                            const huffman::Codebook& cb) {
  const ReferenceSync ref = reference_sync(enc.stream, cb);
  const std::uint64_t subseq_bits = enc.stream.geometry.subseq_bits();
  std::ostringstream msg;
  if (enc.gaps.size() != ref.sym_count.size()) {
    msg << "gap array has " << enc.gaps.size() << " entries for "
        << ref.sym_count.size() << " subsequences";
    return msg.str();
  }
  for (std::size_t g = 0; g < enc.gaps.size(); ++g) {
    const std::uint64_t target = g * subseq_bits + enc.gaps[g];
    if (target != ref.start_bit[g]) {
      msg << "gap[" << g << "] points at bit " << target
          << ", first codeword of the subsequence is at "
          << ref.start_bit[g];
      return msg.str();
    }
  }
  return {};
}

}  // namespace ohd::core
