// Common result type of every decoder: the decoded symbols plus the
// simulated per-phase timings (Table II rows).
#pragma once

#include <cstdint>
#include <vector>

#include "core/phase_timings.hpp"

namespace ohd::core {

struct DecodeResult {
  std::vector<std::uint16_t> symbols;
  PhaseTimings phases;

  double seconds() const { return phases.total(); }
};

}  // namespace ohd::core
