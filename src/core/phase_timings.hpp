// Simulated per-phase timings of a decode, mirroring the row structure of the
// paper's Table II.
#pragma once

#include <cstdint>

namespace ohd::core {

struct PhaseTimings {
  double intra_sync_s = 0.0;    // intra-sequence synchronization (self-sync)
  double inter_sync_s = 0.0;    // inter-sequence synchronization (self-sync)
  double output_index_s = 0.0;  // symbol counting (gap) + prefix sum
  double tune_s = 0.0;          // Algorithm 2 shared-memory tuning
  double decode_write_s = 0.0;  // decode + write phase
  double other_s = 0.0;         // gap-array load, small fixups

  double total() const {
    return intra_sync_s + inter_sync_s + output_index_s + tune_s +
           decode_write_s + other_s;
  }

  PhaseTimings& operator+=(const PhaseTimings& o) {
    intra_sync_s += o.intra_sync_s;
    inter_sync_s += o.inter_sync_s;
    output_index_s += o.output_index_s;
    tune_s += o.tune_s;
    decode_write_s += o.decode_write_s;
    other_s += o.other_s;
    return *this;
  }

  /// Visits every phase as (name, seconds) — the single source of truth for
  /// consumers that iterate phases generically (obs::absorb_phase_timings,
  /// report emitters) so adding a phase here is the only edit needed.
  template <typename Fn>
  void for_each_phase(Fn&& fn) const {
    fn("intra_sync", intra_sync_s);
    fn("inter_sync", inter_sync_s);
    fn("output_index", output_index_s);
    fn("tune", tune_s);
    fn("decode_write", decode_write_s);
    fn("other", other_s);
  }
};

}  // namespace ohd::core
