#include "core/selfsync_decoder.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/decode_write.hpp"
#include "core/subseq_decode.hpp"
#include "cudasim/algorithms.hpp"

namespace ohd::core {

namespace {

struct DeviceAddrs {
  std::uint64_t units;
  std::uint64_t start_bit;
  std::uint64_t sym_count;
  std::uint64_t seq_exit;
  std::uint64_t sync_flag;
  std::uint64_t out_index;
  std::uint64_t out;
  std::uint64_t table;
};

DeviceAddrs reserve_addrs(cudasim::SimContext& ctx,
                          const huffman::StreamEncoding& enc) {
  DeviceAddrs a;
  const std::uint64_t n = enc.num_subseqs();
  a.units = ctx.reserve_address(enc.units.size() * 4);
  a.start_bit = ctx.reserve_address((n + 1) * 8);
  a.sym_count = ctx.reserve_address(n * 4);
  a.seq_exit = ctx.reserve_address(enc.num_seqs() * 8);
  a.sync_flag = ctx.reserve_address(n * 4);
  a.out_index = ctx.reserve_address((n + 1) * 8);
  a.out = ctx.reserve_address(enc.num_symbols * 2);
  a.table = ctx.reserve_address(1 << 18);
  return a;
}

}  // namespace

SyncInfo selfsync_synchronize(cudasim::SimContext& ctx,
                              const huffman::StreamEncoding& enc,
                              const huffman::Codebook& cb,
                              const DecoderConfig& config, bool early_exit) {
  SyncInfo info;
  const std::uint32_t num_subseqs = enc.num_subseqs();
  const std::uint32_t S = config.threads_per_block;
  const std::uint32_t num_seqs = enc.num_seqs();
  const std::uint64_t subseq_bits = enc.geometry.subseq_bits();
  const CostModel& cost = config.cost;

  info.start_bit.assign(num_subseqs + 1, 0);
  info.sym_count.assign(num_subseqs, 0);
  for (std::uint32_t g = 0; g < num_subseqs; ++g) {
    info.start_bit[g] = static_cast<std::uint64_t>(g) * subseq_bits;
  }
  info.start_bit[num_subseqs] = enc.total_bits;
  if (num_subseqs == 0) return info;

  std::vector<std::uint64_t> seq_exit(num_seqs, 0);
  const DeviceAddrs addrs = reserve_addrs(ctx, enc);

  // ---- Phase 1: intra-sequence synchronization ----------------------------
  const auto intra = ctx.launch(
      "intra_sync", {num_seqs, S, 0}, [&](cudasim::BlockCtx& blk) {
        const std::uint32_t first = blk.block_idx() * S;
        const std::uint32_t last = std::min(first + S, num_subseqs);

        std::vector<std::uint64_t> pos(S, 0);
        std::vector<std::uint32_t> next_s(S, 0);
        std::vector<char> finished(S, 0);
        std::uint32_t num_finished = 0;

        // Iteration 0: every thread decodes its own subsequence from its
        // (assumed) boundary start.
        blk.for_each_thread([&](cudasim::ThreadCtx& t) {
          const std::uint32_t g = first + t.tid();
          if (g >= num_subseqs) {
            finished[t.tid()] = 1;
            ++num_finished;
            return;
          }
          const std::uint64_t start =
              t.tid() == 0 ? info.start_bit[first]
                           : static_cast<std::uint64_t>(g) * subseq_bits;
          const std::uint64_t limit =
              static_cast<std::uint64_t>(g + 1) * subseq_bits;
          const auto r = count_span(t, enc, addrs.units, cb, start, limit,
                                    config);
          info.sym_count[g] = r.num_symbols;
          if (g + 1 < last) {
            info.start_bit[g + 1] = r.end_bit;
            t.global_write(addrs.start_bit + (g + 1) * 8, 8);
          } else {
            seq_exit[blk.block_idx()] = r.end_bit;
            t.global_write(addrs.seq_exit + blk.block_idx() * 8, 8);
          }
          t.global_write(addrs.sym_count + g * 4, 4);
          t.charge(6);
          pos[t.tid()] = r.end_bit;
          next_s[t.tid()] = g + 1;
        });

        // Iterations 1..S-1: each thread continues into the next
        // subsequence until its decode "meets up" with the recorded
        // synchronization point. The ORIGINAL kernel always runs all S-1
        // iterations (every barrier costs the whole block); the OPTIMIZED
        // kernel votes with __all_sync and exits as soon as every thread has
        // validated its point (§IV-A).
        for (std::uint32_t iter = 1; iter < S; ++iter) {
          if (early_exit && num_finished == S) break;
          blk.for_each_thread([&](cudasim::ThreadCtx& t) {
            t.charge(early_exit ? cost.all_sync_cycles
                                : cost.sync_check_cycles);
            if (!early_exit) {
              // The published kernel decides per-iteration progress by
              // re-polling its subsequence's synchronization flag from
              // global memory (a volatile load every busy-wait round); the
              // optimized variant replaces the poll with a register-only
              // __all_sync vote, which is exactly why early exit also shows
              // up in the memory-bound regime.
              const std::uint32_t g = first + t.tid();
              if (g < num_subseqs) t.global_read(addrs.sync_flag + g * 4, 4);
            }
            if (finished[t.tid()]) return;
            const std::uint32_t s = next_s[t.tid()];
            if (s >= last) {
              finished[t.tid()] = 1;
              ++num_finished;
              return;
            }
            const std::uint64_t limit =
                static_cast<std::uint64_t>(s + 1) * subseq_bits;
            const auto r = count_span(t, enc, addrs.units, cb, pos[t.tid()],
                                      limit, config);
            info.sym_count[s] = r.num_symbols;
            t.global_write(addrs.sym_count + s * 4, 4);
            const bool at_seq_end = (s + 1 == last);
            std::uint64_t& slot = at_seq_end ? seq_exit[blk.block_idx()]
                                             : info.start_bit[s + 1];
            const std::uint64_t slot_addr =
                at_seq_end ? addrs.seq_exit + blk.block_idx() * 8
                           : addrs.start_bit + (s + 1) * 8;
            t.global_read(slot_addr, 8);
            t.charge(6);
            if (r.end_bit == slot) {
              finished[t.tid()] = 1;
              ++num_finished;
            } else {
              slot = r.end_bit;
              t.global_write(slot_addr, 8);
              if (!early_exit && s < num_subseqs) {
                // Publish the moved sync point for the busy-wait pollers.
                t.global_write(addrs.sync_flag + s * 4, 4);
              }
            }
            pos[t.tid()] = r.end_bit;
            next_s[t.tid()] = s + 1;
          });
        }
      });
  info.intra_seconds = intra.timing.seconds;

  // ---- Phase 2: inter-sequence synchronization -----------------------------
  // Each block compares its entry (the previous sequence's exit) with the
  // assumed one and re-synchronizes its chain if they differ; iterate until
  // no exit changes. Exits are snapshotted per iteration to match the GPU's
  // parallel-read semantics.
  for (std::uint32_t round = 0; round < num_seqs + 1; ++round) {
    bool changed = false;
    const std::vector<std::uint64_t> exit_snapshot = seq_exit;
    const auto inter = ctx.launch(
        "inter_sync", {num_seqs, S, 0}, [&](cudasim::BlockCtx& blk) {
          blk.for_each_thread([&](cudasim::ThreadCtx& t) {
            if (t.tid() != 0) return;  // lane 0 walks the chain
            const std::uint32_t j = blk.block_idx();
            const std::uint32_t first = j * S;
            const std::uint32_t last = std::min(first + S, num_subseqs);
            const std::uint64_t entry =
                j == 0 ? 0 : exit_snapshot[j - 1];
            t.global_read(addrs.seq_exit + (j == 0 ? 0 : (j - 1)) * 8, 8);
            t.global_read(addrs.start_bit + first * 8, 8);
            t.charge(8);
            if (entry == info.start_bit[first]) return;
            info.start_bit[first] = entry;
            t.global_write(addrs.start_bit + first * 8, 8);
            std::uint64_t p = entry;
            for (std::uint32_t s = first; s < last; ++s) {
              const std::uint64_t limit =
                  static_cast<std::uint64_t>(s + 1) * subseq_bits;
              const auto r =
                  count_span(t, enc, addrs.units, cb, p, limit, config);
              info.sym_count[s] = r.num_symbols;
              t.global_write(addrs.sym_count + s * 4, 4);
              const bool at_seq_end = (s + 1 == last);
              std::uint64_t& slot =
                  at_seq_end ? seq_exit[j] : info.start_bit[s + 1];
              t.charge(4);
              if (r.end_bit == slot) break;  // met an existing sync point
              slot = r.end_bit;
              t.global_write(at_seq_end ? addrs.seq_exit + j * 8
                                        : addrs.start_bit + (s + 1) * 8,
                             8);
              if (at_seq_end) changed = true;
              p = r.end_bit;
            }
          });
        });
    info.inter_seconds += inter.timing.seconds;
    ++info.inter_iterations;
    if (!changed) break;
  }

  info.start_bit[num_subseqs] = enc.total_bits;
  return info;
}

DecodeResult decode_selfsync(cudasim::SimContext& ctx,
                             const huffman::StreamEncoding& enc,
                             const huffman::Codebook& cb,
                             const DecoderConfig& config,
                             const SelfSyncOptions& options) {
  DecodeResult result;
  result.symbols.assign(enc.num_symbols, 0);
  if (enc.num_subseqs() == 0) return result;

  SyncInfo sync =
      selfsync_synchronize(ctx, enc, cb, config, options.early_exit);
  result.phases.intra_sync_s = sync.intra_seconds;
  result.phases.inter_sync_s = sync.inter_seconds;

  // ---- Phase 3: output indices ---------------------------------------------
  const double t_before = ctx.timeline().total();
  const std::vector<std::uint64_t> out_index =
      cudasim::device_exclusive_prefix_sum(ctx, sync.sym_count,
                                           "output_index");
  result.phases.output_index_s = ctx.timeline().total() - t_before;
  if (out_index.back() != enc.num_symbols) {
    throw std::logic_error("self-sync produced inconsistent symbol counts");
  }

  // ---- Phase 4: decode + write ---------------------------------------------
  WritePlan plan;
  plan.stream = &enc;
  plan.codebook = &cb;
  plan.start_bit = sync.start_bit;
  plan.out_index = out_index;
  plan.units_addr = ctx.reserve_address(enc.units.size() * 4);
  plan.start_bit_addr = ctx.reserve_address(sync.start_bit.size() * 8);
  plan.out_index_addr = ctx.reserve_address(out_index.size() * 8);
  plan.out_addr = ctx.reserve_address(enc.num_symbols * 2);
  plan.table_addr = ctx.reserve_address(1 << 18);

  if (!options.staged_writes) {
    result.phases.decode_write_s = decode_write_direct(
        ctx, plan, result.symbols, config, /*record_table_reads=*/true);
  } else if (options.tune_shared_memory) {
    const TunedDecodeResult tuned =
        decode_write_tuned(ctx, plan, result.symbols, config);
    result.phases.tune_s = tuned.tune_seconds;
    result.phases.decode_write_s = tuned.decode_write_seconds;
  } else {
    result.phases.decode_write_s = decode_write_staged(
        ctx, plan, result.symbols, config, options.fixed_buffer_symbols);
  }
  return result;
}

}  // namespace ohd::core
